// Package maint is the background maintenance engine: a budgeted,
// pressure-triggered scheduler that runs storage maintenance (vertex-wise
// compaction and epoch-based block reclamation) off the commit path.
//
// The paper's storage claim (§6) is that maintenance is vertex-wise — no
// LSM-style multi-file merges ever run — so a pass can stop after any
// vertex. The scheduler leans on exactly that property: work is issued in
// slices of at most Config.SliceVertices vertices bounded by a soft
// Config.SliceBudget wall-clock cap, with a Config.Yield pause between
// slices, so foreground commit latency stays flat no matter how large the
// backlog grows. Passes start when pressure crosses a trigger (dirty-set
// size or the dead-bytes estimate) and at a wall-clock floor
// (Config.Interval) once a fraction of either threshold accumulates — a
// trickle of writes, or a replica applying its primary's stream, still
// gets reclaimed on a bounded cadence.
//
// The scheduler owns no storage knowledge: the engine hands it a Runner
// (implemented by core.Graph) and the loop decides only when and how much.
// All passes — background, pressure-forced, and synchronous requests via
// RunPass — execute on the one scheduler goroutine, which is what makes a
// synchronous CompactNow a single-flight façade with no double-pass race
// against the trigger path.
package maint

import (
	"runtime"
	"sync"
	"time"

	"livegraph/internal/metrics"
)

// Config tunes the scheduler. The zero value selects the defaults.
type Config struct {
	// SliceVertices caps how many dirty vertices one slice may compact
	// before yielding. Default 256.
	SliceVertices int

	// SliceBudget is the soft wall-clock cap per slice: a slice that
	// exceeds it stops claiming vertices and returns the rest to the
	// dirty set. Default 200µs.
	SliceBudget time.Duration

	// Yield is the pause between slices of one background pass — the
	// breathing room that keeps p99 commit latency flat. The default,
	// 400µs, is deliberately 2x the slice budget: under a sustained
	// backlog maintenance settles at a ~1/3 duty cycle, so on few-core
	// hosts the foreground keeps most of the machine. Synchronous
	// passes (RunPass) skip it.
	Yield time.Duration

	// Interval is the wall-clock floor: how often the scheduler checks
	// for work even when no trigger fired. Backlog at or above 1/8 of
	// either trigger threshold starts a pass on this cadence, so
	// trickle loads (a replica applying a slow primary, a mostly-read
	// workload) still reclaim garbage with bounded staleness. Default
	// 250ms.
	Interval time.Duration

	// DirtyTrigger starts a pass when the dirty set holds at least this
	// many vertices. Default 2048.
	DirtyTrigger int64

	// DeadBytesTrigger starts a pass when the dead-bytes estimate
	// reaches this many bytes. Default 4MiB.
	DeadBytesTrigger int64

	// Workers is the morsel-parallel fan-out within one slice. Default
	// min(4, max(1, GOMAXPROCS/2)) — maintenance should overlap the
	// foreground, not displace it.
	Workers int
}

func (c *Config) fill() {
	if c.SliceVertices <= 0 {
		c.SliceVertices = 256
	}
	if c.SliceBudget <= 0 {
		c.SliceBudget = 200 * time.Microsecond
	}
	if c.Yield <= 0 {
		c.Yield = 400 * time.Microsecond
	}
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.DirtyTrigger <= 0 {
		c.DirtyTrigger = 2048
	}
	if c.DeadBytesTrigger <= 0 {
		c.DeadBytesTrigger = 4 << 20
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0) / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
		if c.Workers > 4 {
			c.Workers = 4
		}
	}
}

// Runner is the engine-side surface the scheduler drives; core.Graph
// implements it.
type Runner interface {
	// MaintSlice compacts up to maxVertices dirty vertices, stopping
	// early (and returning unfinished work to the dirty set) once
	// deadline passes — but always making progress on at least some
	// work if any exists. It reports how many vertices it processed,
	// whether the deadline actually cut the slice short, and whether
	// dirty work remains.
	MaintSlice(maxVertices int, deadline time.Time) (processed int, cut, more bool)

	// MaintEndPass runs pass-boundary work: reclaiming deferred blocks
	// whose readers have moved on, and pass-level accounting.
	MaintEndPass()

	// MaintPressure returns the current dirty-set size and dead-bytes
	// estimate.
	MaintPressure() (dirty, deadBytes int64)
}

// Scheduler runs maintenance passes on one background goroutine.
type Scheduler struct {
	cfg   Config
	r     Runner
	stats *metrics.MaintStats

	wake chan struct{}      // coalesced "pressure may have crossed a trigger"
	reqs chan chan struct{} // synchronous pass requests (RunPass)
	stop chan struct{}
	done chan struct{}

	closeOnce sync.Once
}

// New creates a scheduler over r recording into stats (which must be
// non-nil). Call Start to launch it.
func New(cfg Config, r Runner, stats *metrics.MaintStats) *Scheduler {
	cfg.fill()
	return &Scheduler{
		cfg:   cfg,
		r:     r,
		stats: stats,
		wake:  make(chan struct{}, 1),
		reqs:  make(chan chan struct{}),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Config returns the scheduler's effective (default-filled) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Start launches the scheduler goroutine.
func (s *Scheduler) Start() { go s.loop() }

// Close stops the scheduler and waits for the in-flight slice, if any, to
// finish. Unfinished work stays in the dirty set; it is not an error to
// close with a backlog (the next Open's maintenance will pick it up, or
// the graph is being discarded).
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Notify tells the scheduler pressure changed. It is called from the
// write path on every dirty mark, so it must stay cheap: two atomic loads
// and, only when a trigger is crossed, one non-blocking channel send.
func (s *Scheduler) Notify() {
	dirty, dead := s.r.MaintPressure()
	if dirty < s.cfg.DirtyTrigger && dead < s.cfg.DeadBytesTrigger {
		return
	}
	s.kick()
}

// Kick unconditionally wakes the scheduler (the commit-count trigger and
// tests use this; pressure filtering is Notify's job).
func (s *Scheduler) Kick() { s.kick() }

func (s *Scheduler) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// RunPass runs one maintenance pass — drain the dirty backlog observed
// at the request, then reclaim — and returns when it completes. The pass
// executes on the scheduler goroutine (single-flight with background
// slices); if one is already mid-pass, this request merges into it, the
// pass re-aims at the current backlog and the remainder runs without
// yields. Returns immediately if the scheduler is closed.
func (s *Scheduler) RunPass() {
	req := make(chan struct{})
	select {
	case s.reqs <- req:
	case <-s.done:
		return
	}
	select {
	case <-req:
	case <-s.done:
	}
}

func (s *Scheduler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case req := <-s.reqs:
			s.pass([]chan struct{}{req})
		case <-s.wake:
			if dirty, _ := s.r.MaintPressure(); dirty > 0 {
				s.pass(nil)
			}
		case <-tick.C:
			// Wall-clock floor: backlog that never crosses a trigger
			// still gets maintained on this cadence, once it reaches a
			// fraction (1/8) of the trigger thresholds. The fraction
			// bounds steady-state garbage under trickle loads without
			// making background passes observable to workloads too
			// small to have meaningful garbage at all.
			dirty, dead := s.r.MaintPressure()
			if dirty >= (s.cfg.DirtyTrigger+7)/8 || dead >= (s.cfg.DeadBytesTrigger+7)/8 {
				s.pass(nil)
			}
		}
	}
}

// pass drains the dirty set in budgeted slices. Every pass is bounded:
// it aims at the backlog observed when it started (extended to the
// current backlog whenever a synchronous requester merges in), so under
// sustained churn passes terminate — running end-of-pass reclamation and
// counting, with fresh dirt simply triggering the next pass — and
// CompactNow can never be pinned down by writers that dirty vertices as
// fast as the drain. waiters are synchronous requesters to release at
// the pass boundary; their presence (or arrival mid-pass) switches the
// pass to urgent mode, which drops the inter-slice yield and deadline so
// sync callers are not paced like background work.
func (s *Scheduler) pass(waiters []chan struct{}) {
	urgent := len(waiters) > 0
	start := time.Now()
	budget, _ := s.r.MaintPressure() // vertices this pass aims to drain
	for {
		// Absorb sync requests that landed mid-pass: they merge into
		// this pass instead of scheduling a second one, and the pass
		// re-aims at the backlog as they see it.
		select {
		case req := <-s.reqs:
			waiters = append(waiters, req)
			urgent = true
			if d, _ := s.r.MaintPressure(); d > budget {
				budget = d
			}
		default:
		}

		deadline := time.Time{}
		if !urgent {
			deadline = time.Now().Add(s.cfg.SliceBudget)
		}
		processed, cut, more := s.r.MaintSlice(s.cfg.SliceVertices, deadline)
		s.stats.Slices.Add(1)
		budget -= int64(processed)
		if cut {
			s.stats.SlicesYielded.Add(1)
		}
		if !more || budget <= 0 {
			break
		}
		if !urgent {
			select {
			case <-s.stop:
				// Shutdown mid-pass: leave the backlog in the dirty
				// set and let the loop's select observe stop. Waiters
				// only exist in urgent mode (which never yields), but
				// release any defensively.
				for _, w := range waiters {
					close(w)
				}
				s.finishPass(start)
				return
			case <-time.After(s.cfg.Yield):
			}
		}
	}
	s.r.MaintEndPass()
	s.finishPass(start)
	s.stats.Passes.Add(1)
	for _, w := range waiters {
		close(w)
	}
}

func (s *Scheduler) finishPass(start time.Time) {
	d := time.Since(start).Nanoseconds()
	s.stats.PassNanos.Add(d)
	s.stats.LastPassNanos.Store(d)
}
