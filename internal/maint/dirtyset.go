package maint

import (
	"sync"
	"sync/atomic"
)

// DirtySet is the lock-striped set of vertices whose blocks changed since
// they were last compacted. The write path marks vertices here (one striped
// lock, not a global one), and maintenance slices drain bounded chunks.
//
// Alongside membership the set keeps a dead-bytes estimate: every Mark may
// carry a weight approximating the bytes the marking operation turned into
// garbage (an invalidated edge entry, a superseded vertex version). The
// estimate is what makes the scheduler's dead-bytes pressure trigger
// possible without scanning anything; it travels with the entry, so a
// drain, a re-mark after a budget cut, or a pass completion all keep the
// gauge consistent.
type DirtySet struct {
	shards []dirtyShard
	mask   uint64
	count  atomic.Int64
	dead   atomic.Int64
	// next is the shard a Drain starts from, rotated so successive bounded
	// drains service every shard instead of starving the high ones.
	next atomic.Uint64
}

type dirtyShard struct {
	mu sync.Mutex
	m  map[int64]int64 // vertex id -> accumulated dead-bytes estimate
	_  [4]int64        // keep neighboring shard locks off one cache line
}

// DefaultShards is the stripe count used when NewDirtySet is given n <= 0.
// 64 stripes keep the marking path uncontended at every worker count the
// engine supports without making bounded drains scan a long shard array.
const DefaultShards = 64

// NewDirtySet creates a set with n lock stripes (rounded up to a power of
// two; DefaultShards if n <= 0).
func NewDirtySet(n int) *DirtySet {
	if n <= 0 {
		n = DefaultShards
	}
	sz := 1
	for sz < n {
		sz <<= 1
	}
	d := &DirtySet{shards: make([]dirtyShard, sz), mask: uint64(sz - 1)}
	for i := range d.shards {
		d.shards[i].m = make(map[int64]int64)
	}
	return d
}

// shardOf maps a vertex to its stripe. Vertex IDs are dense, so the low
// bits alone spread adjacent IDs across stripes.
func (d *DirtySet) shardOf(id int64) *dirtyShard {
	return &d.shards[uint64(id)&d.mask]
}

// Mark records that vertex id's blocks changed, accumulating deadBytes
// into the garbage estimate. Safe for concurrent use.
func (d *DirtySet) Mark(id, deadBytes int64) {
	s := d.shardOf(id)
	s.mu.Lock()
	old, ok := s.m[id]
	s.m[id] = old + deadBytes
	s.mu.Unlock()
	if !ok {
		d.count.Add(1)
	}
	if deadBytes != 0 {
		d.dead.Add(deadBytes)
	}
}

// Len returns the number of dirty vertices (exact between concurrent
// marks; the scheduler treats it as a pressure gauge).
func (d *DirtySet) Len() int64 { return d.count.Load() }

// DeadBytes returns the accumulated dead-bytes estimate of everything
// still in the set.
func (d *DirtySet) DeadBytes() int64 { return d.dead.Load() }

// Dirty is one drained entry: a vertex and the dead-bytes estimate it
// carried (returned so a caller cut short by its budget can Mark the
// entry back without losing the estimate).
type Dirty struct {
	ID   int64
	Dead int64
}

// Drain removes up to max entries, appending them to buf (which may be
// nil) and returning the result. Successive calls rotate the starting
// stripe so bounded drains eventually service every shard.
func (d *DirtySet) Drain(max int, buf []Dirty) []Dirty {
	if max <= 0 {
		return buf
	}
	n := len(d.shards)
	start := int(d.next.Add(1)-1) % n
	taken := 0
	for i := 0; i < n && taken < max; i++ {
		s := &d.shards[(start+i)%n]
		s.mu.Lock()
		for id, dead := range s.m {
			delete(s.m, id)
			buf = append(buf, Dirty{ID: id, Dead: dead})
			d.count.Add(-1)
			if dead != 0 {
				d.dead.Add(-dead)
			}
			taken++
			if taken >= max {
				break
			}
		}
		s.mu.Unlock()
	}
	return buf
}
