package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWordsFor(t *testing.T) {
	cases := []struct{ total, want int }{
		{8, 0},    // 64 B block: no filter
		{32, 0},   // 256 B block: no filter (paper: filters for blocks > 256 B)
		{64, 8},   // 512 B block: 64/16=4 words, rounded up to one cache line
		{128, 8},  // 1 KiB block: 128/16=8
		{256, 16}, // 2 KiB: 16
		{4096, 256},
	}
	for _, c := range cases {
		if got := WordsFor(c.total); got != c.want {
			t.Errorf("WordsFor(%d) = %d, want %d", c.total, got, c.want)
		}
	}
}

func TestNoFalseNegatives(t *testing.T) {
	words := make([]int64, 64)
	f := View(words)
	keys := make([]uint64, 200)
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for key %d", k)
		}
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		words := make([]int64, 32)
		flt := View(words)
		for _, k := range keys {
			flt.Add(k)
		}
		for _, k := range keys {
			if !flt.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFilterAlwaysMaybe(t *testing.T) {
	f := View(nil)
	if !f.Empty() {
		t.Fatal("nil-backed filter should be empty")
	}
	if !f.MayContain(123) {
		t.Fatal("empty filter must answer maybe (true)")
	}
	f.Add(123) // must not panic
}

func TestShortRegionDegrades(t *testing.T) {
	f := View(make([]int64, 5)) // less than one block
	if !f.Empty() {
		t.Fatal("sub-block region should degrade to empty filter")
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	// 512 words = 4 KiB filter, 500 keys => load well under capacity.
	words := make([]int64, 512)
	f := View(words)
	rng := rand.New(rand.NewSource(7))
	present := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		k := rng.Uint64()
		present[k] = true
		f.Add(k)
	}
	fp := 0
	trials := 20000
	for i := 0; i < trials; i++ {
		k := rng.Uint64()
		if present[k] {
			continue
		}
		if f.MayContain(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(trials)
	if rate > 0.05 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestReset(t *testing.T) {
	words := make([]int64, 32)
	f := View(words)
	for i := uint64(0); i < 100; i++ {
		f.Add(i)
	}
	f.Reset()
	// After reset a never-added key should (almost surely) be absent; check
	// that all bits are actually zero, which guarantees it.
	for i, w := range words {
		if w != 0 {
			t.Fatalf("word %d not cleared", i)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	f := View(make([]int64, 256))
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := View(make([]int64, 256))
	for i := 0; i < 1000; i++ {
		f.Add(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(uint64(i))
	}
}
