// Package bloom implements the blocked Bloom filter that LiveGraph embeds in
// every TEL header (paper §4): a fixed-size filter occupying 1/16 of the TEL
// block (for blocks larger than 256 bytes), organised as 64-byte blocks so a
// membership test touches a single cache line (Putze et al.'s cache-efficient
// blocked design, paper ref [50]).
//
// The filter answers "was destination vertex d ever inserted into this
// adjacency list?" — a negative answer lets an edge insertion skip the
// tail-to-head scan for a previous version (the paper's "early rejection",
// effective in >99.9% of LinkBench insertions).
package bloom

import "sync/atomic"

// BlockWords is the number of 64-bit words in one filter block: 8 words =
// 64 bytes = one cache line.
const BlockWords = 8

// K is the number of bits set per key within its block.
const K = 4

// Filter is a view over a word slice owned by the caller (a slice of the TEL
// block's words). The zero-length filter accepts nothing and reports
// everything as possibly present, so callers fall back to scanning.
type Filter struct {
	words []int64
}

// View wraps a word region as a filter. The region length should be a
// multiple of BlockWords; a short region degrades to an always-maybe filter.
func View(words []int64) Filter {
	n := (len(words) / BlockWords) * BlockWords
	return Filter{words: words[:n]}
}

// WordsFor returns the filter length (in words) for a TEL block of
// totalWords words: 1/16 of the block, rounded down to whole cache lines,
// and zero for blocks of 256 bytes (32 words) or smaller, matching the
// paper's sizing rule.
func WordsFor(totalWords int) int {
	if totalWords <= 32 {
		return 0
	}
	w := totalWords / 16
	w -= w % BlockWords
	if w < BlockWords {
		w = BlockWords
	}
	return w
}

// Empty reports whether the filter has zero capacity (tiny blocks).
func (f Filter) Empty() bool { return len(f.words) == 0 }

// hash64 is a splitmix64-style finalizer: cheap, stdlib-free, good avalanche.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Add records key in the filter. No-op on an empty filter. Bits are set
// with atomic OR so concurrent MayContain readers (which race with inserts
// by design, like the paper's in-block filters) never observe torn words.
func (f Filter) Add(key uint64) {
	if len(f.words) == 0 {
		return
	}
	h := hash64(key)
	nblocks := uint64(len(f.words) / BlockWords)
	base := int(h%nblocks) * BlockWords
	h = hash64(h)
	for i := 0; i < K; i++ {
		bit := h & 511 // 512 bits per block
		w := &f.words[base+int(bit>>6)]
		mask := int64(1) << (bit & 63)
		for {
			old := atomic.LoadInt64(w)
			if old&mask != 0 || atomic.CompareAndSwapInt64(w, old, old|mask) {
				break
			}
		}
		h >>= 9
	}
}

// MayContain reports whether key was possibly added. False negatives never
// occur for keys added via Add on the same region. An empty filter returns
// true (callers must scan).
func (f Filter) MayContain(key uint64) bool {
	if len(f.words) == 0 {
		return true
	}
	h := hash64(key)
	nblocks := uint64(len(f.words) / BlockWords)
	base := int(h%nblocks) * BlockWords
	h = hash64(h)
	for i := 0; i < K; i++ {
		bit := h & 511
		if atomic.LoadInt64(&f.words[base+int(bit>>6)])&(1<<(bit&63)) == 0 {
			return false
		}
		h >>= 9
	}
	return true
}

// Reset clears all bits.
func (f Filter) Reset() {
	for i := range f.words {
		f.words[i] = 0
	}
}
