package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"livegraph/internal/lint/analysis"
)

// Spanend enforces the tracing span lifecycle: a span returned by
// StartSpan/StartAlways must be ended on every path out of the function
// that started it, or the span never reaches the trace ring — worse, a
// sampled root span that is never ended pins its children forever, so the
// leak is silent until /v1/traces goes quiet under load.
//
// The check is path-sensitive over the function body: every return (and
// the fall-off end) reachable after the start must have passed an End()
// call. `defer sp.End()` — directly or inside a deferred closure — covers
// all paths. Obligations transfer with the value: spans assigned to
// struct fields, passed to calls, returned, or otherwise escaping are the
// holder's problem and are not flagged here.
var Spanend = &analysis.Analyzer{
	Name: "spanend",
	Doc: `require End() on every path for spans from StartSpan/StartAlways

A span that is started but not ended never reaches the trace ring and
pins its parent's child list. End it on every return path, or defer it.`,
	Run: runSpanend,
}

// spanStatus is the per-path obligation lattice, tracked as a bitmask of
// the statuses a path may be in.
const (
	spanUnstarted = 1 << iota // start site not executed on this path
	spanStarted               // started, End() still owed
	spanEnded                 // End() has run
)

// spanStartCall reports whether call is StartSpan/StartAlways returning
// (_, *Span) — matched by name plus result shape, so the real
// internal/obs API and fixture mini-APIs both qualify.
func spanStartCall(info *types.Info, call *ast.CallExpr) bool {
	fn := callee(info, call)
	if fn == nil || (fn.Name() != "StartSpan" && fn.Name() != "StartAlways") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	ptr, ok := sig.Results().At(sig.Results().Len() - 1).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

func runSpanend(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkSpanFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// spanVar is one span-typed local started in the function under check.
type spanVar struct {
	obj   types.Object
	start token.Pos // first start assignment, for reporting
}

// checkSpanFunc finds the span variables a function starts and verifies
// each is ended on every path. Nested function literals are checked on
// their own visit; here they only matter as escape/defer sites.
func checkSpanFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Pass 1: collect span variables from `_, sp := StartSpan(...)`-shaped
	// assignments to plain local identifiers. Blank and field targets are
	// out of scope (no local obligation / obligation moved to the struct).
	vars := map[types.Object]*spanVar{}
	startAssigns := map[*ast.Ident]bool{} // LHS idents of start assignments
	walkSkipFuncLits(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) < 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !spanStartCall(info, call) {
			return
		}
		id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		startAssigns[id] = true
		if _, seen := vars[obj]; !seen {
			vars[obj] = &spanVar{obj: obj, start: as.Pos()}
		}
	})
	if len(vars) == 0 {
		return
	}

	// Pass 2: classify every other use. Allowed without transferring the
	// obligation: sp.End()/sp.SetAttr()/sp.MarkSlow() calls and nil
	// comparisons. Anything else (argument, return value, reassignment
	// from a non-start expression, closure capture beyond a deferred End)
	// escapes — the obligation moved with the value, so the variable is
	// dropped rather than misreported.
	consumed := map[*ast.Ident]bool{}
	deferred := map[types.Object]bool{}
	markMethodUse := func(call *ast.CallExpr) types.Object {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return nil
		}
		obj := info.Uses[id]
		if obj == nil || vars[obj] == nil {
			return nil
		}
		switch sel.Sel.Name {
		case "End", "SetAttr", "MarkSlow":
			consumed[id] = true
			if sel.Sel.Name == "End" {
				return obj
			}
		}
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			markMethodUse(node)
		case *ast.DeferStmt:
			// defer sp.End() — or a deferred closure calling sp.End() —
			// covers every subsequent path.
			if obj := markMethodUse(node.Call); obj != nil {
				deferred[obj] = true
			}
			if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						if obj := markMethodUse(c); obj != nil {
							deferred[obj] = true
						}
					}
					return true
				})
			}
		case *ast.BinaryExpr:
			if node.Op == token.EQL || node.Op == token.NEQ {
				for _, side := range []ast.Expr{node.X, node.Y} {
					if id, ok := side.(*ast.Ident); ok && vars[info.Uses[id]] != nil {
						consumed[id] = true
					}
				}
			}
		}
		return true
	})
	for obj := range vars {
		if spanVarEscapes(info, body, obj, startAssigns, consumed) {
			delete(vars, obj)
		}
	}

	// Pass 3: path evaluation per remaining variable.
	for obj, sv := range vars {
		if deferred[obj] {
			continue
		}
		ev := &spanEval{pass: pass, info: info, obj: obj, sv: sv}
		out := ev.stmts(body.List, spanUnstarted)
		if out&spanStarted != 0 && !ev.reported {
			pass.Reportf(sv.start,
				"span %s is not ended on the fall-through path; call End() before the function returns or defer it",
				obj.Name())
		}
	}
}

// walkSkipFuncLits visits nodes of body without descending into nested
// function literals (they are separate functions with their own check).
func walkSkipFuncLits(body *ast.BlockStmt, fn func(n ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// spanVarEscapes reports whether obj has any use that moves the End
// obligation elsewhere: every occurrence must be a start-assignment
// target or one of the consumed (method call / nil comparison) idents.
func spanVarEscapes(info *types.Info, body *ast.BlockStmt, obj types.Object, startAssigns map[*ast.Ident]bool, consumed map[*ast.Ident]bool) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if info.Defs[id] == obj {
			return true // declaration site
		}
		if info.Uses[id] != obj {
			return true
		}
		if !startAssigns[id] && !consumed[id] {
			escapes = true
		}
		return true
	})
	return escapes
}

// spanEval evaluates the possible span statuses along every control-flow
// path. Sets flow forward through statements; branches union; returns
// with a started status are findings.
type spanEval struct {
	pass     *analysis.Pass
	info     *types.Info
	obj      types.Object
	sv       *spanVar
	reported bool
}

func (e *spanEval) stmts(list []ast.Stmt, in int) int {
	set := in
	for _, s := range list {
		set = e.stmt(s, set)
		if set == 0 { // no fall-through (return/branch on every path)
			return 0
		}
	}
	return set
}

func (e *spanEval) stmt(s ast.Stmt, in int) int {
	switch st := s.(type) {
	case *ast.AssignStmt:
		if e.isStart(st) {
			return spanStarted
		}
		return in
	case *ast.ExprStmt:
		if e.isEndCall(st.X) {
			return spanEnded
		}
		return in
	case *ast.ReturnStmt:
		e.atExit(st.Pos(), in)
		return 0
	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing construct without
		// exiting the function; treating them as path ends is the
		// conservative non-reporting choice.
		return 0
	case *ast.BlockStmt:
		return e.stmts(st.List, in)
	case *ast.LabeledStmt:
		return e.stmt(st.Stmt, in)
	case *ast.IfStmt:
		if st.Init != nil {
			in = e.stmt(st.Init, in)
		}
		// A nil span is one that was never sampled: inside `if sp == nil`
		// (or the else of `if sp != nil`) nothing is owed.
		thenIn, elseIn := in, in
		switch e.nilCheck(st.Cond) {
		case token.EQL: // sp == nil
			thenIn = spanUnstarted
		case token.NEQ: // sp != nil
			elseIn = spanUnstarted
		}
		out := e.stmts(st.Body.List, thenIn)
		if st.Else != nil {
			out |= e.stmt(st.Else, elseIn)
		} else {
			out |= elseIn
		}
		return out
	case *ast.ForStmt:
		if st.Init != nil {
			in = e.stmt(st.Init, in)
		}
		return e.loop(st.Body, in)
	case *ast.RangeStmt:
		return e.loop(st.Body, in)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return e.switchStmt(s, in)
	case *ast.SelectStmt:
		out := 0
		for _, c := range st.Body.List {
			out |= e.stmts(c.(*ast.CommClause).Body, in)
		}
		if out == 0 {
			out = in
		}
		return out
	default:
		return in
	}
}

// loop runs the body to a fixed point (the status set is a 3-bit mask, so
// two passes suffice) and unions with the zero-iteration path.
func (e *spanEval) loop(body *ast.BlockStmt, in int) int {
	set := in
	for i := 0; i < 3; i++ {
		next := set | e.stmts(body.List, set)
		if next == set {
			break
		}
		set = next
	}
	return set
}

func (e *spanEval) switchStmt(s ast.Stmt, in int) int {
	var body *ast.BlockStmt
	var init ast.Stmt
	hasDefault := false
	switch st := s.(type) {
	case *ast.SwitchStmt:
		body, init = st.Body, st.Init
	case *ast.TypeSwitchStmt:
		body, init = st.Body, st.Init
	}
	if init != nil {
		in = e.stmt(init, in)
	}
	out := 0
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		out |= e.stmts(cc.Body, in)
	}
	if !hasDefault {
		out |= in
	}
	return out
}

// nilCheck classifies cond as `e.obj == nil` (token.EQL), `e.obj != nil`
// (token.NEQ), or neither (token.ILLEGAL).
func (e *spanEval) nilCheck(cond ast.Expr) token.Token {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return token.ILLEGAL
	}
	matches := func(x, y ast.Expr) bool {
		id, ok := x.(*ast.Ident)
		if !ok || e.info.Uses[id] != e.obj {
			return false
		}
		n, ok := y.(*ast.Ident)
		return ok && n.Name == "nil"
	}
	if matches(be.X, be.Y) || matches(be.Y, be.X) {
		return be.Op
	}
	return token.ILLEGAL
}

// isStart reports whether the assignment is a start site for e.obj.
func (e *spanEval) isStart(as *ast.AssignStmt) bool {
	if len(as.Rhs) != 1 || len(as.Lhs) < 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !spanStartCall(e.info, call) {
		return false
	}
	id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok {
		return false
	}
	return e.info.Defs[id] == e.obj || e.info.Uses[id] == e.obj
}

// isEndCall reports whether expr is e.obj.End().
func (e *spanEval) isEndCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && e.info.Uses[id] == e.obj
}

// atExit reports a function exit reached while the span may still be
// started. One finding per variable keeps the output readable.
func (e *spanEval) atExit(pos token.Pos, set int) {
	if set&spanStarted == 0 || e.reported {
		return
	}
	e.reported = true
	e.pass.Reportf(pos,
		"span %s (started at %s) is not ended on this return path; call End() before returning or defer it",
		e.obj.Name(), e.pass.Fset.Position(e.sv.start))
}
