package lint_test

import (
	"testing"

	"livegraph/internal/lint"
	"livegraph/internal/lint/linttest"
)

func TestAtomicfield(t *testing.T) {
	linttest.Run(t, "atomicfield/counter", lint.Atomicfield)
}
