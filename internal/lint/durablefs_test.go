package lint_test

import (
	"testing"

	"livegraph/internal/lint"
	"livegraph/internal/lint/linttest"
)

// TestDurablefs is the acceptance regression: reintroducing a raw
// os.Create/os.Rename/os.WriteFile/os.OpenFile/os.Remove into a WAL-like
// package fails lint.
func TestDurablefs(t *testing.T) {
	linttest.Run(t, "durablefs/wal", lint.Durablefs)
}

// TestDurablefsDiskExempt: the disk package is the seam itself and may use
// the raw calls.
func TestDurablefsDiskExempt(t *testing.T) {
	linttest.Run(t, "durablefs/disk", lint.Durablefs)
}
