package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"livegraph/internal/lint"
)

// TestRepoLintClean pins the zero-finding baseline: the whole repository,
// under all five analyzers, produces no findings. Any new violation of a
// durability/locking/concurrency invariant fails this test as well as the
// CI lint job.
func TestRepoLintClean(t *testing.T) {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(dir)) // internal/lint -> repo root
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("expected module root at %s: %v", root, err)
	}
	findings, err := lint.Run(root, []string{"./..."}, lint.All)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
	}
}
