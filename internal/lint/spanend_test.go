package lint_test

import (
	"testing"

	"livegraph/internal/lint"
	"livegraph/internal/lint/linttest"
)

func TestSpanend(t *testing.T) {
	linttest.Run(t, "spanend/spans", lint.Spanend)
}
