package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"livegraph/internal/lint/analysis"
)

// The escape hatch: a comment of the form
//
//	//lglint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the same line as a finding, or on the line directly above it,
// suppresses that analyzer's findings there. The reason is mandatory —
// an ignore that cannot say why it exists is exactly the silent invariant
// drift lglint is meant to stop — and malformed directives are reported
// as findings of the pseudo-analyzer "lglint".
const ignorePrefix = "lglint:ignore"

// IgnoreSet indexes ignore directives by file and line.
type IgnoreSet struct {
	// byLine maps file -> line -> analyzer names suppressed there.
	byLine map[string]map[int][]string
}

// CollectIgnores scans the files' comments for ignore directives. It
// returns the directive index plus one diagnostic per malformed directive.
func CollectIgnores(fset *token.FileSet, files []*ast.File) (*IgnoreSet, []analysis.Diagnostic) {
	set := &IgnoreSet{byLine: make(map[string]map[int][]string)}
	var malformed []analysis.Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					malformed = append(malformed, analysis.Diagnostic{
						Analyzer: "lglint",
						Pos:      c.Pos(),
						Message:  "malformed lglint:ignore directive: want //lglint:ignore <analyzer> <reason>",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				if bad := unknownAnalyzer(names); bad != "" {
					malformed = append(malformed, analysis.Diagnostic{
						Analyzer: "lglint",
						Pos:      c.Pos(),
						Message:  fmt.Sprintf("lglint:ignore names unknown analyzer %q", bad),
					})
					continue
				}
				pos := fset.Position(c.Pos())
				lines := set.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					set.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
			}
		}
	}
	return set, malformed
}

func unknownAnalyzer(names []string) string {
	for _, n := range names {
		if n == "all" {
			continue
		}
		known := false
		for _, a := range All {
			if a.Name == n {
				known = true
				break
			}
		}
		if !known {
			return n
		}
	}
	return ""
}

// Suppressed reports whether d is covered by a directive on its line or
// the line above.
func (s *IgnoreSet) Suppressed(fset *token.FileSet, d analysis.Diagnostic) bool {
	pos := fset.Position(d.Pos)
	lines, ok := s.byLine[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// Filter drops suppressed diagnostics.
func (s *IgnoreSet) Filter(fset *token.FileSet, diags []analysis.Diagnostic) []analysis.Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if !s.Suppressed(fset, d) {
			kept = append(kept, d)
		}
	}
	return kept
}
