// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, carrying exactly the surface
// lglint's project-specific analyzers need. The real module is not a
// dependency of this repository (the engine itself is stdlib-only), so the
// analyzers are written against this mirror instead; the types are shaped
// so that porting an analyzer to the upstream framework is a rename.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker. Exactly one of Run and
// RunProgram must be set: Run is invoked once per package (the common
// case), RunProgram once with every loaded package at once — for
// whole-program invariants such as atomicfield, where an access in one
// package constrains accesses in every other.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -checks selections and
	// //lglint:ignore directives. Lower-case, no spaces.
	Name string

	// Doc is the one-paragraph invariant statement printed by lglint -help.
	// The first line is the summary.
	Doc string

	// Run implements a per-package analyzer.
	Run func(*Pass) error

	// RunProgram implements a whole-program analyzer.
	RunProgram func(*Program) error
}

// Package is one type-checked package: the unit a Pass sees.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Program is every package of one lglint invocation, type-checked against
// a single token.FileSet, in dependency order (imports precede importers).
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	report func(Diagnostic)
}

// NewProgram assembles a Program whose diagnostics are delivered to report.
func NewProgram(fset *token.FileSet, pkgs []*Package, report func(Diagnostic)) *Program {
	return &Program{Fset: fset, Packages: pkgs, report: report}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Report delivers a finding at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: msg})
}

// Reportf delivers a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Pass builds the per-package Pass an analyzer's RunProgram can use to
// report against one of the program's packages.
func (prog *Program) Pass(a *Analyzer, pkg *Package) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      prog.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.TypesInfo,
		report:    prog.report,
	}
}

// RunAll executes each analyzer over the program, fanning per-package
// analyzers across every package. The first analyzer error aborts (analyzer
// errors mean the tool is broken, not that the code has findings).
func (prog *Program) RunAll(analyzers []*Analyzer) error {
	for _, a := range analyzers {
		if (a.Run == nil) == (a.RunProgram == nil) {
			return fmt.Errorf("analyzer %s: exactly one of Run and RunProgram must be set", a.Name)
		}
		if a.RunProgram != nil {
			if err := a.RunProgram(prog); err != nil {
				return fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range prog.Packages {
			if err := a.Run(prog.Pass(a, pkg)); err != nil {
				return fmt.Errorf("%s: %s: %w", a.Name, pkg.Pkg.Path(), err)
			}
		}
	}
	return nil
}
