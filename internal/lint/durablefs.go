package lint

import (
	"go/ast"

	"livegraph/internal/lint/analysis"
)

// Durablefs enforces the crash-consistency seam PR 6 introduced: every
// byte that must survive a crash reaches the filesystem through
// disk.Backend (OpenLog/CreateAtomic/Remove/SyncDir) or the atomic-file
// helpers (WriteFileAtomic/AtomicFile), which fsync before rename and
// fsync the directory after. A raw os.Create at a final path, or an
// os.Rename without the surrounding fsyncs, is exactly the checkpoint-swap
// bug class fixed by hand in PR 6 — so outside internal/disk those
// functions may not be referenced at all. Deliberately non-durable output
// (e.g. lgbench -json) uses //lglint:ignore durablefs <reason>.
var Durablefs = &analysis.Analyzer{
	Name: "durablefs",
	Doc: `forbid raw os file mutation outside internal/disk

os.Create, os.Rename, os.WriteFile, os.OpenFile and os.Remove bypass the
engine's crash-consistency protocol (tmp file, fsync, rename, dir fsync).
Durable paths must go through disk.Backend / disk.CreateAtomic /
disk.WriteFileAtomic; only internal/disk itself may touch os directly.`,
	Run: runDurablefs,
}

// rawOSFuncs are the os functions that create, replace or remove
// filesystem entries without the seam's fsync discipline.
var rawOSFuncs = map[string]bool{
	"Create":    true,
	"Rename":    true,
	"WriteFile": true,
	"OpenFile":  true,
	"Remove":    true,
}

func runDurablefs(pass *analysis.Pass) error {
	// The seam itself is the one place allowed to use the raw calls; like
	// syncerr's scoping, the final path element identifies it so testdata
	// fixtures named "disk" are exempt under the same rule.
	if pkgPathBase(pass.Pkg.Path()) == "disk" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if !isPkgFunc(obj, "os", "Create", "Rename", "WriteFile", "OpenFile", "Remove") {
				return true
			}
			if !rawOSFuncs[obj.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"os.%s bypasses the crash-consistency seam; durable files must go through disk.Backend (CreateAtomic/WriteFileAtomic/Remove + SyncDir)",
				obj.Name())
			return true
		})
	}
	return nil
}
