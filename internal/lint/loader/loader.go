// Package loader type-checks the packages lglint analyzes without any
// dependency outside the standard library. It shells out to `go list
// -deps -export` for package discovery and compiled export data (built by
// the go command's cache, so this works fully offline), parses each target
// package's sources, and type-checks them with the stdlib gc importer
// resolving every import through that export data.
package loader

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"livegraph/internal/lint/analysis"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Result holds the loaded program plus the export-data index, which
// linttest reuses to type-check fixture packages that import both the
// standard library and this module's packages.
type Result struct {
	Fset  *token.FileSet
	Roots []*analysis.Package // pattern-matched packages, dependency order

	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// Load lists patterns (e.g. "./...") from dir, and parses + type-checks
// every matched non-test package.
func Load(dir string, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	res := &Result{
		Fset:    token.NewFileSet(),
		exports: make(map[string]string),
	}
	var roots []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			res.exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			pp := p
			roots = append(roots, &pp)
		}
	}
	res.imp = importer.ForCompiler(res.Fset, "gc", res.lookup)

	for _, p := range roots {
		pkg, err := res.check(p.Dir, p.GoFiles, p.ImportPath)
		if err != nil {
			return nil, err
		}
		res.Roots = append(res.Roots, pkg)
	}
	return res, nil
}

// lookup resolves an import path to its export data for the gc importer.
func (r *Result) lookup(path string) (io.ReadCloser, error) {
	f, ok := r.exports[path]
	if !ok {
		return nil, fmt.Errorf("loader: no export data for %q", path)
	}
	return os.Open(f)
}

// CheckDir parses and type-checks a standalone directory of Go files (a
// test fixture) under the given import path, resolving its imports through
// the already-listed export data. Files are checked in name order so
// diagnostics are deterministic.
func (r *Result) CheckDir(dir, importPath string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	return r.check(dir, files, importPath)
}

// check parses the named files from dir and type-checks them as one package.
func (r *Result) check(dir string, fileNames []string, importPath string) (*analysis.Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(r.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: r.imp}
	pkg, err := conf.Check(importPath, r.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", importPath, err)
	}
	return &analysis.Package{Fset: r.Fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}
