package lint

import (
	"go/ast"

	"livegraph/internal/lint/analysis"
)

// Ctxprop enforces context propagation through library code. The engine's
// protocol guarantees lean on every blocking wait — worker-slot
// acquisition, vertex-lock waits, group-commit waits, replication
// reconnects — being bounded by the caller's context; a
// context.Background() buried in a library package silently detaches the
// wait from whatever deadline the caller thought applied. Entry points
// (package main) and tests own their lifetimes and are exempt; the few
// deliberate context-free public wrappers carry //lglint:ignore ctxprop
// with the reason.
var Ctxprop = &analysis.Analyzer{
	Name: "ctxprop",
	Doc: `forbid context.Background/TODO in non-test library packages

Library code must accept and propagate a caller context so every blocking
wait stays cancellable; minting a fresh root context detaches the
operation from the caller's deadline. Package main (process entry points)
is exempt.`,
	Run: runCtxprop,
}

func runCtxprop(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if !isPkgFunc(obj, "context", "Background", "TODO") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"context.%s in library code: accept a context parameter and propagate it instead",
				obj.Name())
			return true
		})
	}
	return nil
}
