package lint

import (
	"go/ast"

	"livegraph/internal/lint/analysis"
)

// Syncerr enforces error handling on the durability-critical call surface
// of the WAL and disk packages. Commit acknowledgement is a durability
// promise: if an fsync/msync/Close on a WAL segment or checkpoint file
// fails and the error is dropped, the engine acks a commit that may not
// survive a crash. In internal/wal and internal/disk, the error result of
// Close/Sync/SyncDir/Fsync/Msync/Flush must be consumed — returned,
// checked, or (on error-cleanup paths where an earlier error already
// wins) explicitly discarded with `_ =`, which keeps the decision visible
// in review. Bare call statements, defers and go statements are findings.
var Syncerr = &analysis.Analyzer{
	Name: "syncerr",
	Doc: `forbid unchecked durability-critical errors in wal and disk

A dropped error from Close/Sync/SyncDir/Fsync/Msync/Flush in the WAL or
disk packages can turn a commit ack into a lie. Handle the error or
discard it explicitly with _ = so the choice is auditable.`,
	Run: runSyncerr,
}

// syncerrFuncs are the method/function names whose error results carry
// durability outcomes.
var syncerrFuncs = []string{"Close", "Sync", "SyncDir", "Fsync", "Msync", "Flush"}

// syncerrPackage limits the analyzer to the durability layer: the real
// packages are livegraph/internal/wal and livegraph/internal/disk, and
// fixtures mirror the same final path elements.
func syncerrPackage(path string) bool {
	base := pkgPathBase(path)
	return base == "wal" || base == "disk"
}

func runSyncerr(pass *analysis.Pass) error {
	if !syncerrPackage(pass.Pkg.Path()) {
		return nil
	}
	check := func(call *ast.CallExpr, how string) {
		fn := callee(pass.TypesInfo, call)
		if fn == nil || !returnsError(fn) {
			return
		}
		named := false
		for _, n := range syncerrFuncs {
			if fn.Name() == n {
				named = true
				break
			}
		}
		if !named {
			return
		}
		pass.Reportf(call.Pos(),
			"error result of %s is dropped%s; handle it or discard explicitly with _ =",
			fn.FullName(), how)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					check(call, "")
				}
			case *ast.DeferStmt:
				check(stmt.Call, " in defer")
			case *ast.GoStmt:
				check(stmt.Call, " in go statement")
			}
			return true
		})
	}
	return nil
}
