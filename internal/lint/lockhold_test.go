package lint_test

import (
	"testing"

	"livegraph/internal/lint"
	"livegraph/internal/lint/linttest"
)

func TestLockhold(t *testing.T) {
	linttest.Run(t, "lockhold/locks", lint.Lockhold)
}
