// Package linttest is a self-contained miniature of
// golang.org/x/tools/go/analysis/analysistest: it type-checks fixture
// packages under internal/lint/testdata/src and compares analyzer
// diagnostics against the fixtures' `// want "regexp"` comments.
//
// Fixture import paths keep their directory layout, so the path-scoped
// analyzers (durablefs, syncerr, lockhold) see the same final path
// elements — "wal", "disk" — that scope them in the real tree. Fixtures
// may import both the standard library and this module's packages; both
// resolve through the export data of a single `go list -deps -export ./...`
// run per test process.
package linttest

import (
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"livegraph/internal/lint"
	"livegraph/internal/lint/analysis"
	"livegraph/internal/lint/loader"
)

const (
	fixtureDir   = "internal/lint/testdata/src"
	importPrefix = "livegraph/internal/lint/testdata/src"
)

var (
	loadOnce sync.Once
	shared   *loader.Result
	rootDir  string
	loadErr  error
)

// load lists and type-checks the module once per test process; every
// fixture resolves its imports through the resulting export-data index.
func load(t *testing.T) (*loader.Result, string) {
	t.Helper()
	loadOnce.Do(func() {
		rootDir, loadErr = moduleRoot()
		if loadErr != nil {
			return
		}
		shared, loadErr = loader.Load(rootDir, "./...")
	})
	if loadErr != nil {
		t.Fatalf("linttest: loading module: %v", loadErr)
	}
	return shared, rootDir
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("linttest: no go.mod above working directory")
		}
		dir = parent
	}
}

// Run checks that the analyzers produce exactly the findings declared by
// the fixture's `// want "regexp"` comments: every finding must match a
// want on its line, and every want must be matched by a finding. Ignore
// directives are applied first, so fixtures exercise the escape hatch
// end to end; malformed directives surface as analyzer "lglint".
func Run(t *testing.T, fixture string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	findings, pkg := check(t, fixture, analyzers)
	wants := parseWants(t, pkg)
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("unexpected finding at %s: [%s] %s", f.Position, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s finding matched %q", w.file, w.line, strings.Join(names(analyzers), "/"), w.re)
		}
	}
}

// Findings runs the analyzers over one fixture package and returns the
// surviving findings for tests that assert directly (e.g. on malformed
// ignore directives, whose diagnostics sit on comment lines where a want
// comment cannot).
func Findings(t *testing.T, fixture string, analyzers ...*analysis.Analyzer) []lint.Finding {
	t.Helper()
	findings, _ := check(t, fixture, analyzers)
	return findings
}

// check type-checks the fixture as one package and runs the analyzers,
// returning position-sorted findings after ignore filtering.
func check(t *testing.T, fixture string, analyzers []*analysis.Analyzer) ([]lint.Finding, *analysis.Package) {
	t.Helper()
	res, root := load(t)
	dir := filepath.Join(root, filepath.FromSlash(fixtureDir), filepath.FromSlash(fixture))
	pkg, err := res.CheckDir(dir, importPrefix+"/"+fixture)
	if err != nil {
		t.Fatalf("linttest: fixture %s: %v", fixture, err)
	}
	var diags []analysis.Diagnostic
	prog := analysis.NewProgram(res.Fset, []*analysis.Package{pkg}, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := prog.RunAll(analyzers); err != nil {
		t.Fatalf("linttest: fixture %s: %v", fixture, err)
	}
	ignores, malformed := lint.CollectIgnores(res.Fset, pkg.Files)
	diags = ignores.Filter(res.Fset, diags)
	diags = append(diags, malformed...)
	findings := make([]lint.Finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, lint.Finding{
			Analyzer: d.Analyzer,
			Position: res.Fset.Position(d.Pos),
			Message:  d.Message,
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := findings[i].Position, findings[j].Position
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return findings, pkg
}

// want is one expected-finding declaration.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantTokenRE matches the quoted or backquoted patterns of a want comment.
var wantTokenRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts `// want "re" ["re" ...]` expectations, anchored to
// the comment's own line (trailing comments share the finding's line).
func parseWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				toks := wantTokenRE.FindAllString(text, -1)
				if len(toks) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				}
				for _, tok := range toks {
					pat, err := strconv.Unquote(tok)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, tok, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// claim marks the first unmatched want covering f, if any.
func claim(wants []*want, f lint.Finding) bool {
	for _, w := range wants {
		if !w.matched && w.file == f.Position.Filename && w.line == f.Position.Line && w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func names(analyzers []*analysis.Analyzer) []string {
	out := make([]string, len(analyzers))
	for i, a := range analyzers {
		out[i] = a.Name
	}
	return out
}
