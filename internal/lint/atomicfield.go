package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"livegraph/internal/lint/analysis"
)

// Atomicfield enforces all-or-nothing atomicity on struct fields: a field
// that is ever passed to a sync/atomic pointer function (atomic.LoadInt64,
// atomic.AddUint64, atomic.CompareAndSwapInt64, ...) anywhere in the
// program must never be read or written plainly anywhere else. A single
// plain load next to atomic stores is the epoch/log-pointer race class the
// race detector only catches probabilistically — the schedule that
// interleaves the plain access rarely materialises under -race but is
// legal on real hardware. Fields using the typed atomics (atomic.Int64
// etc.) are immune by construction and are the preferred fix. Struct
// literal keys (pre-publication initialisation) are permitted.
var Atomicfield = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: `forbid mixing sync/atomic and plain access to one struct field

If any code reaches a field through sync/atomic, every access must be
atomic: a plain read races with atomic stores and a plain write races with
everything. Prefer migrating the field to atomic.Int64/Uint64/Bool.`,
}

// Assigned in init to break the Atomicfield -> runAtomicfield ->
// Atomicfield initialization cycle (runAtomicfield names the analyzer when
// constructing per-package passes).
func init() { Atomicfield.RunProgram = runAtomicfield }

// atomicPtrFuncs are the sync/atomic functions whose first argument is a
// pointer to the word being accessed.
func isAtomicPtrFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "And", "Or", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// fieldKey names a struct field in a way that is stable across the
// source-loaded and export-data views of its package: the declaring
// struct's package path and type name plus the field name.
func fieldKey(pass *analysis.Pass, sel *ast.SelectorExpr) (string, *types.Var) {
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return "", nil
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || !field.IsField() || field.Pkg() == nil {
		return "", nil
	}
	// Walk the selection's index path to the struct that directly declares
	// the field, so promoted fields of embedded structs key consistently.
	t := selection.Recv()
	index := selection.Index()
	for _, i := range index[:len(index)-1] {
		t = derefType(t)
		s, ok := t.Underlying().(*types.Struct)
		if !ok {
			break
		}
		t = s.Field(i).Type()
	}
	owner := "?"
	if named, ok := derefType(t).(*types.Named); ok {
		owner = named.Obj().Name()
	}
	return fmt.Sprintf("%s.%s.%s", field.Pkg().Path(), owner, field.Name()), field
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

type atomicUse struct {
	pos   token.Pos
	field *types.Var
}

func runAtomicfield(prog *analysis.Program) error {
	// Pass 1: collect every field reached through a sync/atomic pointer
	// function, and remember the selector nodes so pass 2 can tell the
	// atomic accesses themselves apart from plain ones.
	atomicFields := make(map[string]atomicUse)
	atomicSelectors := make(map[*ast.SelectorExpr]bool)
	forEachPass := func(a *analysis.Analyzer, fn func(pass *analysis.Pass, f *ast.File)) {
		for _, pkg := range prog.Packages {
			pass := prog.Pass(a, pkg)
			for _, f := range pass.Files {
				fn(pass, f)
			}
		}
	}
	forEachPass(Atomicfield, func(pass *analysis.Pass, f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := callee(pass.TypesInfo, call)
			if fn == nil || !isAtomicPtrFunc(fn) {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			key, field := fieldKey(pass, sel)
			if field == nil {
				return true
			}
			atomicSelectors[sel] = true
			if _, seen := atomicFields[key]; !seen {
				atomicFields[key] = atomicUse{pos: call.Pos(), field: field}
			}
			return true
		})
	})
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other selection of a tracked field is a finding.
	forEachPass(Atomicfield, func(pass *analysis.Pass, f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSelectors[sel] {
				return true
			}
			key, field := fieldKey(pass, sel)
			if field == nil {
				return true
			}
			use, tracked := atomicFields[key]
			if !tracked {
				return true
			}
			pass.Reportf(sel.Pos(),
				"plain access to field %s, which is accessed with sync/atomic (e.g. at %s); this races — use the atomic API or migrate the field to a typed atomic",
				key, prog.Fset.Position(use.pos))
			return true
		})
	})
	return nil
}
