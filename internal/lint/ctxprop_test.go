package lint_test

import (
	"testing"

	"livegraph/internal/lint"
	"livegraph/internal/lint/linttest"
)

func TestCtxprop(t *testing.T) {
	linttest.Run(t, "ctxprop/lib", lint.Ctxprop)
}

func TestCtxpropMainExempt(t *testing.T) {
	linttest.Run(t, "ctxprop/mainpkg", lint.Ctxprop)
}
