package lint_test

import (
	"strings"
	"testing"

	"livegraph/internal/lint"
	"livegraph/internal/lint/linttest"
)

// TestIgnoreDirectives: valid directives suppress on their own line and
// the line below; directives naming a different analyzer suppress nothing.
func TestIgnoreDirectives(t *testing.T) {
	linttest.Run(t, "ignore/code", lint.Durablefs)
}

// TestMalformedDirectives: a directive without a reason, or naming an
// unknown analyzer, is itself a finding and suppresses nothing. Asserted
// directly because the "lglint" diagnostics sit on the comment lines
// themselves, where a want comment cannot.
func TestMalformedDirectives(t *testing.T) {
	findings := linttest.Findings(t, "ignore/malformed", lint.Ctxprop)
	var malformed, unknown, ctxprop int
	for _, f := range findings {
		switch {
		case f.Analyzer == "lglint" && strings.Contains(f.Message, "malformed lglint:ignore"):
			malformed++
		case f.Analyzer == "lglint" && strings.Contains(f.Message, `unknown analyzer "nosuchcheck"`):
			unknown++
		case f.Analyzer == "ctxprop":
			ctxprop++
		default:
			t.Errorf("unexpected finding at %s: [%s] %s", f.Position, f.Analyzer, f.Message)
		}
	}
	if malformed != 1 || unknown != 1 || ctxprop != 2 {
		t.Errorf("got %d malformed / %d unknown-analyzer / %d ctxprop findings, want 1/1/2 (all: %+v)",
			malformed, unknown, ctxprop, findings)
	}
}
