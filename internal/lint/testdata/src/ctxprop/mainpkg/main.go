// Fixture: package main owns the process lifetime and may mint the root
// context — no findings here.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
