// Fixture: minting root contexts in a library package.
package lib

import "context"

func detached() context.Context {
	return context.Background() // want `context\.Background in library code`
}

func todo() context.Context {
	return context.TODO() // want `context\.TODO in library code`
}

func propagated(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx) // deriving from the caller's context is the point
}
