// Fixture: the //lglint:ignore escape hatch — line-above and same-line
// placement both suppress; an undirected finding still fires.
package code

import "os"

func suppressedAbove(tmp, final string) error {
	//lglint:ignore durablefs fixture output is deliberately non-durable
	return os.Rename(tmp, final)
}

func suppressedSameLine(path string) error {
	return os.Remove(path) //lglint:ignore durablefs fixture output is deliberately non-durable
}

func unsuppressed(path string) error {
	return os.Remove(path) // want `os\.Remove bypasses the crash-consistency seam`
}

func wrongAnalyzer(path string) error {
	//lglint:ignore ctxprop directive names a different analyzer, so durablefs still fires
	return os.Remove(path) // want `os\.Remove bypasses the crash-consistency seam`
}
