// Fixture: malformed ignore directives are findings themselves and
// suppress nothing.
package malformed

import "context"

func noReason() context.Context {
	//lglint:ignore ctxprop
	return context.Background()
}

func unknownAnalyzer() context.Context {
	//lglint:ignore nosuchcheck because of reasons
	return context.TODO()
}
