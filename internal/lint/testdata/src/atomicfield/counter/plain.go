package counter

func (s *stats) readPlain() int64 {
	return s.commits // want `plain access to field .*\.stats\.commits, which is accessed with sync/atomic`
}

func (s *stats) writePlain() {
	s.commits = 0 // want `plain access to field .*\.stats\.commits`
}
