// Fixture: a field reached through sync/atomic anywhere must be atomic
// everywhere. The plain read lives in a second file of the package to
// prove the analysis is cross-file.
package counter

import "sync/atomic"

type stats struct {
	commits int64
	aborts  int64
}

func newStats() *stats {
	return &stats{commits: 0} // struct-literal init precedes publication: allowed
}

func (s *stats) inc() {
	atomic.AddInt64(&s.commits, 1)
}

func (s *stats) loadAtomic() int64 {
	return atomic.LoadInt64(&s.commits) // the atomic API itself: allowed
}

func (s *stats) abortsPlain() int64 {
	s.aborts++ // only ever plain: allowed
	return s.aborts
}
