// Fixture: dropped durability-critical errors in a package whose final
// path element is "wal" — in scope for syncerr.
package wal

import "os"

func closeDropped(f *os.File) {
	f.Close() // want `error result of \(\*os\.File\)\.Close is dropped; handle it`
}

func closeDeferred(f *os.File) {
	defer f.Close() // want `\(\*os\.File\)\.Close is dropped in defer`
}

func closeGo(f *os.File) {
	go f.Close() // want `\(\*os\.File\)\.Close is dropped in go statement`
}

func syncDropped(f *os.File) {
	f.Sync() // want `error result of \(\*os\.File\)\.Sync is dropped`
}

func discarded(f *os.File) {
	_ = f.Close() // explicit discard is deliberate and auditable: allowed
}

func handled(f *os.File) error {
	return f.Sync() // returned to the caller: allowed
}

func checked(f *os.File) {
	if err := f.Close(); err != nil {
		panic(err)
	}
}

func otherName(f *os.File) {
	f.Chmod(0o644) // error-returning but not durability-critical: allowed
}
