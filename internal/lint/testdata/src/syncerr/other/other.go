// Fixture: the same dropped Close outside the wal/disk durability layer
// is not syncerr's business (errcheck-style hygiene elsewhere is out of
// scope for the commit-ack invariant).
package other

import "os"

func closeDropped(f *os.File) {
	f.Close()
}
