// Fixture: blocking operations inside a LockTable hold window. Imports
// the real mvcc and disk packages so the analyzer matches the same types
// it sees in the engine.
package locks

import (
	"time"

	"livegraph/internal/disk"
	"livegraph/internal/mvcc"
)

func sendWhileHeld(lt *mvcc.LockTable, ch chan int, v uint64) {
	lt.Lock(v)
	ch <- 1 // want `channel send while holding mvcc vertex/stripe lock`
	lt.Unlock(v)
}

func recvWhileHeld(lt *mvcc.LockTable, ch chan int, v uint64) int {
	lt.Lock(v)
	defer lt.Unlock(v)
	return <-ch // want `channel receive while holding mvcc vertex/stripe lock`
}

func sleepAfterRelease(lt *mvcc.LockTable, v uint64) {
	lt.Lock(v)
	lt.Unlock(v)
	time.Sleep(time.Millisecond) // lock already released: allowed
}

func deferredUnlockHoldsToEnd(lt *mvcc.LockTable, v uint64) {
	if !lt.TryLock(v, time.Millisecond) {
		return
	}
	defer lt.Unlock(v)
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding mvcc vertex/stripe lock`
}

func diskWhileHeld(lt *mvcc.LockTable, v uint64, dir string) {
	lt.Lock(v)
	defer lt.Unlock(v)
	_ = disk.SyncDir(dir) // want `disk I/O \(SyncDir\) while holding mvcc vertex/stripe lock`
}

func nestedBlockingLock(lt *mvcc.LockTable, v, w uint64) {
	lt.Lock(v)
	lt.Lock(w) // want `nested blocking LockTable\.Lock while holding`
	lt.Unlock(w)
	lt.Unlock(v)
}

func singleLockIsFine(lt *mvcc.LockTable, v uint64) {
	lt.Lock(v) // first acquire blocks on nothing held: allowed
	lt.Unlock(v)
}

func blockInOwnLiteral(lt *mvcc.LockTable, ch chan int, v uint64) {
	lt.Lock(v)
	f := func() { <-ch } // separate scope: the literal body holds nothing
	lt.Unlock(v)
	f()
}
