// Fixture: span lifecycle violations for the spanend analyzer. The
// mini-API mirrors internal/obs by shape — StartSpan/StartAlways
// returning (ctx, *Span) — which is what the analyzer matches on.
package spans

import "context"

type Span struct{ ended bool }

func (s *Span) End()             {}
func (s *Span) SetAttr(a ...int) {}
func (s *Span) MarkSlow()        {}

type Tracer struct{}

func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

func (t *Tracer) StartAlways(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

func work() error { return nil }

func neverEnded(ctx context.Context) {
	_, sp := StartSpan(ctx, "op") // want `span sp is not ended on the fall-through path`
	sp.SetAttr(1)
}

func earlyReturnLeaks(ctx context.Context) error {
	_, sp := StartSpan(ctx, "op")
	if err := work(); err != nil {
		return err // want `span sp \(started at .*\) is not ended on this return path`
	}
	sp.End()
	return nil
}

func methodStartLeaks(ctx context.Context, t *Tracer) {
	_, sp := t.StartAlways(ctx, "op") // want `span sp is not ended on the fall-through path`
	sp.MarkSlow()
}

func endedEverywhere(ctx context.Context) error {
	_, sp := StartSpan(ctx, "op")
	if err := work(); err != nil {
		sp.End()
		return err
	}
	sp.End()
	return nil
}

func deferred(ctx context.Context) error {
	_, sp := StartSpan(ctx, "op")
	defer sp.End()
	return work()
}

func deferredClosure(ctx context.Context) error {
	_, sp := StartSpan(ctx, "op")
	defer func() {
		sp.SetAttr(2)
		sp.End()
	}()
	return work()
}

func blankResult(ctx context.Context) {
	_, _ = StartSpan(ctx, "op") // blank: no local obligation
}

type holder struct{ span *Span }

func fieldTarget(ctx context.Context, h *holder) {
	// Struct-field spans are the holder's lifecycle, not this function's.
	_, h.span = StartSpan(ctx, "op")
}

func escapes(ctx context.Context) *Span {
	// Returned: the caller owns End now.
	_, sp := StartSpan(ctx, "op")
	return sp
}

func passedAlong(ctx context.Context) {
	_, sp := StartSpan(ctx, "op")
	endIt(sp)
}

func endIt(sp *Span) { sp.End() }

func nilChecked(ctx context.Context, t *Tracer) {
	_, sp := t.StartSpan(ctx, "op")
	if sp == nil {
		return // nil span: never started, nothing owed
	}
	sp.End()
}

func perIteration(ctx context.Context, items []int) {
	for range items {
		_, sp := StartSpan(ctx, "op")
		sp.End()
	}
}

func loopLeak(ctx context.Context, items []int) {
	for range items {
		_, sp := StartSpan(ctx, "op") // want `span sp is not ended on the fall-through path`
		sp.SetAttr(3)
	}
}

func switchEnded(ctx context.Context, k int) {
	_, sp := StartSpan(ctx, "op")
	switch k {
	case 0:
		sp.End()
	default:
		sp.End()
	}
}

func switchLeak(ctx context.Context, k int) {
	_, sp := StartSpan(ctx, "op") // want `span sp is not ended on the fall-through path`
	switch k {
	case 0:
		sp.End()
	case 1:
		// this arm forgets End
	}
}
