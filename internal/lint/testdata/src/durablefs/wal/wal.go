// Fixture: raw os mutation in a non-disk package (final path element
// "wal", like the real WAL). This is the acceptance regression: putting
// os.Rename back into the WAL must fail lint.
package wal

import "os"

func swapSegment(tmp, final string) error {
	f, err := os.Create(tmp) // want `os\.Create bypasses the crash-consistency seam`
	if err != nil {
		return err
	}
	_ = f.Close()
	return os.Rename(tmp, final) // want `os\.Rename bypasses the crash-consistency seam`
}

func writeMeta(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want `os\.WriteFile bypasses the crash-consistency seam`
}

func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_APPEND, 0o644) // want `os\.OpenFile bypasses the crash-consistency seam`
}

func drop(path string) error {
	return os.Remove(path) // want `os\.Remove bypasses the crash-consistency seam`
}

func read(path string) ([]byte, error) {
	return os.ReadFile(path) // reads cannot lose durable state: allowed
}
