// Fixture: the seam itself (final path element "disk") may use the raw
// os calls — it is where the fsync discipline lives.
package disk

import "os"

func swap(tmp, final string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}
