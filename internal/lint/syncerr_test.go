package lint_test

import (
	"testing"

	"livegraph/internal/lint"
	"livegraph/internal/lint/linttest"
)

func TestSyncerr(t *testing.T) {
	linttest.Run(t, "syncerr/wal", lint.Syncerr)
}

// TestSyncerrScope: the invariant is about the durability layer's commit
// ack, so packages outside wal/disk are out of scope.
func TestSyncerrScope(t *testing.T) {
	linttest.Run(t, "syncerr/other", lint.Syncerr)
}
