package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"livegraph/internal/lint/analysis"
)

// Lockhold flags blocking operations performed while an mvcc vertex/stripe
// lock is held. The lock table's deadlock-avoidance story is that lock
// waits are either timeout-bounded (transactions, TryLockCtx) or
// one-vertex-at-a-time (compaction, apply) — and that nothing ever parks a
// goroutine while holding a stripe: a channel wait, a disk.Backend call or
// a second blocking Lock under a held stripe is the deadlock shape the
// morsel compaction slices were carefully written to avoid (copy under the
// lock, I/O and Yield pacing outside it).
//
// The analysis is lexical and per-function: a window opens at a
// LockTable.Lock/TryLock/TryLockCtx call and closes at a lexically later
// Unlock/UnlockStripe in the same function body; a deferred Unlock keeps
// the window open to the end of the function. Blocking operations inside a
// window are findings. Functions that return while holding (the
// transaction work phase) are responsible for their own callees — the
// analyzer does not track locks across calls, it polices the common
// single-function shape.
var Lockhold = &analysis.Analyzer{
	Name: "lockhold",
	Doc: `forbid blocking operations while an mvcc vertex/stripe lock is held

Channel sends/receives, select, range-over-channel, time.Sleep,
sync.WaitGroup.Wait, epoch waits, disk.Backend I/O and nested blocking
Lock calls must not happen between a LockTable acquire and its release:
a parked goroutine holding a stripe blocks every transaction hashing to
it, and a second blocking Lock can self-deadlock on stripe collisions.`,
	Run: runLockhold,
}

type lockEvent struct {
	pos  token.Pos
	kind int    // acquire / release / block
	desc string // for block events
}

const (
	evAcquire = iota
	evRelease
	evBlock
)

func runLockhold(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Analyze each function body (including each function literal) as
		// its own scope.
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		for _, body := range bodies {
			lockholdScope(pass, body)
		}
	}
	return nil
}

// lockholdScope sweeps one function body's events in source order with a
// hold-depth counter.
func lockholdScope(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []lockEvent
	addBlock := func(pos token.Pos, desc string) {
		events = append(events, lockEvent{pos: pos, kind: evBlock, desc: desc})
	}
	inDefer := make(map[*ast.CallExpr]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate scope, analyzed on its own
		case *ast.DeferStmt:
			inDefer[n.Call] = true
		case *ast.SendStmt:
			addBlock(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				addBlock(n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			addBlock(n.Pos(), "select")
			return false // the comm clauses are part of the select wait
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					addBlock(n.Pos(), "range over channel")
				}
			}
		case *ast.CallExpr:
			classifyLockholdCall(pass, n, inDefer[n], &events)
		}
		return true
	})

	// Stable: a blocking Lock call appends a block event then an acquire at
	// the same position, and that order must survive the sort (the block is
	// judged against locks already held, not the one it acquires).
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	depth := 0
	var acquiredAt token.Pos
	for _, ev := range events {
		switch ev.kind {
		case evAcquire:
			if depth == 0 {
				acquiredAt = ev.pos
			}
			depth++
		case evRelease:
			if depth > 0 {
				depth--
			}
		case evBlock:
			if depth > 0 {
				pass.Reportf(ev.pos,
					"%s while holding mvcc vertex/stripe lock acquired at %s; release the lock before blocking",
					ev.desc, pass.Fset.Position(acquiredAt))
			}
		}
	}
}

// classifyLockholdCall turns a call into acquire/release/block events.
func classifyLockholdCall(pass *analysis.Pass, call *ast.CallExpr, deferred bool, events *[]lockEvent) {
	fn := callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch {
	case isMethodOn(fn, "mvcc", "LockTable", "Lock"):
		// A blocking acquire: deadlock fuel if another stripe is already
		// held (stripe collisions make "different vertices" no guarantee).
		*events = append(*events,
			lockEvent{pos: call.Pos(), kind: evBlock, desc: "nested blocking LockTable.Lock"},
			lockEvent{pos: call.Pos(), kind: evAcquire})
	case isMethodOn(fn, "mvcc", "LockTable", "TryLock", "TryLockCtx"):
		// Timeout-bounded acquires are the sanctioned deadlock-avoidance
		// path; they open a hold window but are not themselves findings.
		*events = append(*events, lockEvent{pos: call.Pos(), kind: evAcquire})
	case isMethodOn(fn, "mvcc", "LockTable", "Unlock", "UnlockStripe"):
		if !deferred { // deferred unlock = held until function end
			*events = append(*events, lockEvent{pos: call.Pos(), kind: evRelease})
		}
	case isPkgFunc(fn, "time", "Sleep"):
		*events = append(*events, lockEvent{pos: call.Pos(), kind: evBlock, desc: "time.Sleep"})
	case isMethodOn(fn, "sync", "WaitGroup", "Wait"):
		*events = append(*events, lockEvent{pos: call.Pos(), kind: evBlock, desc: "sync.WaitGroup.Wait"})
	case isMethodOn(fn, "mvcc", "Epochs", "WaitRead"):
		*events = append(*events, lockEvent{pos: call.Pos(), kind: evBlock, desc: "epoch wait (Epochs.WaitRead)"})
	case isDiskCall(fn):
		*events = append(*events, lockEvent{pos: call.Pos(), kind: evBlock, desc: "disk I/O (" + fn.Name() + ")"})
	}
}

// isDiskCall reports whether fn is declared in a package whose final path
// element is "disk" — the Backend seam and its helpers — or is a method on
// a type declared there (covers disk.Backend interface methods).
func isDiskCall(fn *types.Func) bool {
	if fn.Pkg() != nil && pkgPathBase(fn.Pkg().Path()) == "disk" {
		return true
	}
	if named := recvNamed(fn); named != nil && named.Obj().Pkg() != nil {
		return pkgPathBase(named.Obj().Pkg().Path()) == "disk"
	}
	return false
}
