// Package lint holds lglint's project-specific analyzers: mechanical
// checks for the durability, locking and concurrency invariants the
// engine's correctness argument rests on (paper §5's commit protocol and
// the crash-consistency rules PR 6 established). Each analyzer enforces
// one invariant; cmd/lglint runs them all and CI blocks on any finding.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"livegraph/internal/lint/analysis"
	"livegraph/internal/lint/loader"
)

// All is every analyzer, in the order lglint runs them.
var All = []*analysis.Analyzer{
	Durablefs,
	Ctxprop,
	Syncerr,
	Atomicfield,
	Lockhold,
	Spanend,
}

// ByName resolves a comma-separated -checks selection against All.
func ByName(names string) ([]*analysis.Analyzer, bool) {
	if names == "" || names == "all" {
		return All, true
	}
	var sel []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All {
			if a.Name == name {
				sel = append(sel, a)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return sel, true
}

// Finding is one surviving diagnostic with its position resolved.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

// Run loads patterns from dir, runs the analyzers, applies
// //lglint:ignore directives, and returns the surviving findings sorted
// by position. Malformed ignore directives are themselves findings.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	res, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	prog := analysis.NewProgram(res.Fset, res.Roots, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := prog.RunAll(analyzers); err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, pkg := range res.Roots {
		files = append(files, pkg.Files...)
	}
	ignores, malformed := CollectIgnores(res.Fset, files)
	diags = ignores.Filter(res.Fset, diags)
	diags = append(diags, malformed...)
	findings := make([]Finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, Finding{
			Analyzer: d.Analyzer,
			Position: res.Fset.Position(d.Pos),
			Message:  d.Message,
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := findings[i].Position, findings[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return findings, nil
}

// --- shared type-inspection helpers ---

// callee resolves the function or method a call expression invokes, or nil.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether obj is the package-level function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath string, names ...string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// pkgPathBase returns the last element of an import path.
func pkgPathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// recvNamed returns the named type of a method's receiver (unwrapping one
// pointer), or nil for package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMethodOn reports whether fn is a method named one of names on the
// named type typeName declared in a package whose path's last element is
// pkgBase (matching both the real module layout and testdata fixtures).
func isMethodOn(fn *types.Func, pkgBase, typeName string, names ...string) bool {
	named := recvNamed(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Name() != typeName || pkgPathBase(named.Obj().Pkg().Path()) != pkgBase {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// returnsError reports whether fn's last result is the error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
