package mvcc

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestEpochsBasic(t *testing.T) {
	var e Epochs
	if e.ReadEpoch() != 0 || e.WriteEpoch() != 0 {
		t.Fatal("epochs must start at 0")
	}
	if got := e.AdvanceWrite(); got != 1 {
		t.Fatalf("AdvanceWrite = %d, want 1", got)
	}
	e.PublishRead(1)
	if e.ReadEpoch() != 1 {
		t.Fatal("PublishRead did not take effect")
	}
	// PublishRead never regresses.
	e.PublishRead(0)
	if e.ReadEpoch() != 1 {
		t.Fatal("PublishRead regressed")
	}
}

func TestEpochInvariantGWEGEqGRE(t *testing.T) {
	var e Epochs
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ts := e.AdvanceWrite()
				e.PublishRead(ts)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Both counters are monotone and GWE >= GRE holds at every instant, so
	// loading GRE *first* guarantees the subsequent GWE load is >= it; the
	// opposite order would race with concurrent advances and false-alarm.
	for {
		select {
		case <-done:
			gre := e.ReadEpoch()
			if gwe := e.WriteEpoch(); gwe < gre {
				t.Fatalf("GWE %d < GRE %d at end", gwe, gre)
			}
			return
		default:
			gre := e.ReadEpoch()
			if gwe := e.WriteEpoch(); gwe < gre {
				t.Fatalf("observed GWE %d < GRE %d", gwe, gre)
			}
		}
	}
}

func TestVisibleCommitted(t *testing.T) {
	// Entry created at 5, never invalidated.
	if !Visible(5, NullTS, 5, 0) {
		t.Fatal("entry created at TRE must be visible")
	}
	if Visible(5, NullTS, 4, 0) {
		t.Fatal("entry created after TRE must be invisible")
	}
	// Invalidated at 8: visible to TRE in [5,7], not at 8+.
	if !Visible(5, 8, 7, 0) {
		t.Fatal("TRE 7 < invalidation 8 must see entry")
	}
	if Visible(5, 8, 8, 0) {
		t.Fatal("TRE 8 >= invalidation 8 must not see entry")
	}
}

func TestVisibleOwnWrites(t *testing.T) {
	const tid = 42
	// Own uncommitted insert.
	if !Visible(-tid, NullTS, 3, tid) {
		t.Fatal("transaction must see its own insert")
	}
	// Own insert it later deleted itself.
	if Visible(-tid, -tid, 3, tid) {
		t.Fatal("transaction must not see its own deleted insert")
	}
	// Someone else's uncommitted insert.
	if Visible(-99, NullTS, 3, tid) {
		t.Fatal("other transactions' private inserts must be invisible")
	}
	// Committed entry this transaction has deleted (invalidation = -tid).
	if Visible(2, -tid, 3, tid) {
		t.Fatal("transaction must observe its own delete of a committed entry")
	}
	// Same entry seen by a different reader: still visible (uncommitted delete).
	if !Visible(2, -tid, 3, 7) {
		t.Fatal("uncommitted delete must not hide the entry from others")
	}
	// Pure reader (tid 0) also still sees it.
	if !Visible(2, -tid, 3, 0) {
		t.Fatal("uncommitted delete must not hide the entry from readers")
	}
}

func TestVisibleProperty(t *testing.T) {
	// For committed timestamps (creation >= 0, invalidation > creation or
	// NULL), visibility must be exactly: creation <= tre < invalidation.
	f := func(c, span uint8, tre uint8) bool {
		creation := int64(c)
		inv := creation + 1 + int64(span)
		want := creation <= int64(tre) && int64(tre) < inv
		return Visible(creation, inv, int64(tre), 0) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReaderTableMinActive(t *testing.T) {
	rt := NewReaderTable(4)
	if got := rt.MinActive(100); got != 100 {
		t.Fatalf("idle table MinActive = %d, want fallback 100", got)
	}
	rt.Enter(0, 50)
	rt.Enter(2, 70)
	if got := rt.MinActive(100); got != 50 {
		t.Fatalf("MinActive = %d, want 50", got)
	}
	rt.Exit(0)
	if got := rt.MinActive(100); got != 70 {
		t.Fatalf("MinActive = %d, want 70", got)
	}
	rt.Exit(2)
	if got := rt.MinActive(100); got != 100 {
		t.Fatalf("MinActive = %d, want 100", got)
	}
}

func TestLockTableExclusion(t *testing.T) {
	lt := NewLockTable(64)
	if !lt.TryLock(7, time.Millisecond) {
		t.Fatal("uncontended TryLock failed")
	}
	// Second acquisition of the same vertex must time out.
	start := time.Now()
	if lt.TryLock(7, 20*time.Millisecond) {
		t.Fatal("TryLock on held lock succeeded")
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("TryLock returned before the deadline")
	}
	lt.Unlock(7)
	if !lt.TryLock(7, time.Millisecond) {
		t.Fatal("TryLock after Unlock failed")
	}
	lt.Unlock(7)
}

func TestLockTableConcurrentCounter(t *testing.T) {
	lt := NewLockTable(8)
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				lt.Lock(3)
				counter++
				lt.Unlock(3)
			}
		}()
	}
	wg.Wait()
	if counter != 8*500 {
		t.Fatalf("counter = %d, want %d (lock not exclusive)", counter, 8*500)
	}
}

func TestTIDsUnique(t *testing.T) {
	var tids TIDs
	seen := make(map[int64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int64, 0, 1000)
			for i := 0; i < 1000; i++ {
				local = append(local, tids.Next())
			}
			mu.Lock()
			for _, id := range local {
				if id <= 0 {
					t.Errorf("TID %d not positive", id)
				}
				if seen[id] {
					t.Errorf("duplicate TID %d", id)
				}
				seen[id] = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
}

func BenchmarkVisible(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Visible(5, NullTS, 10, 42)
	}
}

func BenchmarkLockUnlock(b *testing.B) {
	lt := NewLockTable(1 << 16)
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			lt.Lock(i)
			lt.Unlock(i)
			i++
		}
	})
}

func TestWaitReadBarrier(t *testing.T) {
	var e Epochs
	e.Init(3)
	e.WaitRead(3) // already published: returns immediately
	done := make(chan struct{})
	go func() {
		e.WaitRead(7)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("WaitRead(7) returned before publish")
	case <-time.After(5 * time.Millisecond):
	}
	e.PublishRead(7)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("WaitRead(7) did not observe publish")
	}
}

func TestAdvanceTo(t *testing.T) {
	var e Epochs
	e.Init(5)
	e.AdvanceTo(9) // replication apply: both counters jump to the group's epoch
	if e.WriteEpoch() != 9 || e.ReadEpoch() != 9 {
		t.Fatalf("after AdvanceTo(9): GWE=%d GRE=%d", e.WriteEpoch(), e.ReadEpoch())
	}
	e.AdvanceTo(3) // monotonic: an older epoch is a no-op
	if e.WriteEpoch() != 9 || e.ReadEpoch() != 9 {
		t.Fatalf("AdvanceTo(3) rewound: GWE=%d GRE=%d", e.WriteEpoch(), e.ReadEpoch())
	}
}
