// Package mvcc provides the concurrency-control primitives LiveGraph's
// transaction protocol is built from (paper §5): the global read/write epoch
// counters GRE and GWE, transaction identifiers whose negation marks private
// writes, the timestamp visibility rules used during sequential TEL scans,
// the reading-epoch table that compaction consults, and the per-vertex lock
// table with timeout-based deadlock avoidance.
package mvcc

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// NullTS is the invalidation-timestamp value meaning "never invalidated".
// It is negative, so the paper's visibility test "(TRE < InvalidationTS) OR
// (InvalidationTS < 0)" treats NULL and uncommitted (-TID) invalidations
// uniformly: both leave the entry visible to other transactions.
const NullTS int64 = -(1 << 62)

// Epochs holds the two shared counters: GRE (what read transactions may
// see) and GWE (the epoch being written). GWE >= GRE always holds; the
// transaction manager advances GWE when it forms a commit group and GRE
// after the whole group has applied.
type Epochs struct {
	gre atomic.Int64
	gwe atomic.Int64
}

// Init sets both counters (used when recovering a graph to the epoch of its
// last durable state). Must be called before any transaction starts.
func (e *Epochs) Init(ts int64) {
	e.gre.Store(ts)
	e.gwe.Store(ts)
}

// ReadEpoch returns the current global read epoch GRE.
func (e *Epochs) ReadEpoch() int64 { return e.gre.Load() }

// WriteEpoch returns the current global write epoch GWE.
func (e *Epochs) WriteEpoch() int64 { return e.gwe.Load() }

// AdvanceWrite increments GWE and returns the new value — the commit
// timestamp (TWE) of the group being persisted.
func (e *Epochs) AdvanceWrite() int64 { return e.gwe.Add(1) }

// PublishRead sets GRE to ts, exposing the group's updates to transactions
// that start afterwards. ts must be monotonically non-decreasing.
func (e *Epochs) PublishRead(ts int64) {
	for {
		cur := e.gre.Load()
		if ts <= cur {
			return
		}
		if e.gre.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// AdvanceTo moves both counters forward to ts (monotonically; a smaller
// ts is a no-op). This is the replication-apply sequence point: a replica
// does not form commit groups of its own — its epoch sequence is dictated
// by the primary's log — so after a commit group is fully applied, GWE
// and GRE jump together to the group's epoch. GWE is raised first so the
// invariant GWE >= GRE holds at every instant.
func (e *Epochs) AdvanceTo(ts int64) {
	for {
		cur := e.gwe.Load()
		if ts <= cur || e.gwe.CompareAndSwap(cur, ts) {
			break
		}
	}
	e.PublishRead(ts)
}

// WaitRead is the PublishRead barrier: it blocks until GRE >= ts, i.e.
// until the commit group stamped ts (and every earlier group) has fully
// applied and been published. Even with the persist phase fanned out
// across WAL shards, epoch advancement stays a single global sequence
// point — once WaitRead(ts) returns, a new transaction's snapshot includes
// every update of every group up to ts, on every shard.
func (e *Epochs) WaitRead(ts int64) {
	for spins := 0; e.gre.Load() < ts; spins++ {
		if spins < 100 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// Visible reports whether an edge log entry with the given creation and
// invalidation timestamps is visible to a transaction reading at epoch tre
// with identifier tid (pass 0 for pure read transactions).
//
// The rules are the paper's §5 scan conditions:
//
//	(0 <= CreationTS <= TRE) AND ((TRE < InvalidationTS) OR (InvalidationTS < 0))
//	OR (CreationTS == -TID AND InvalidationTS != -TID)
//
// with one refinement: an entry the transaction itself invalidated
// (InvalidationTS == -TID) is never visible to it, so a transaction observes
// its own deletes.
func Visible(creation, invalidation, tre, tid int64) bool {
	if tid != 0 && creation == -tid {
		return invalidation != -tid
	}
	if creation < 0 || creation > tre {
		return false
	}
	if tid != 0 && invalidation == -tid {
		return false
	}
	return invalidation < 0 || invalidation > tre
}

// TIDs hands out unique positive transaction identifiers. The paper builds
// the TID from (thread id, thread-local counter); a single shared atomic is
// equivalent and simpler in Go, where workers are goroutines.
type TIDs struct{ next atomic.Int64 }

// Next returns a fresh TID (always >= 1).
func (t *TIDs) Next() int64 { return t.next.Add(1) }

// ReaderTable is the paper's reading-epoch table: one slot per worker
// recording the TRE of its in-flight transaction, or Idle when none.
// Compaction reads all slots to compute the minimum epoch any ongoing
// transaction can still see.
type ReaderTable struct {
	slots []paddedInt64
}

// Idle marks a slot with no active transaction.
const Idle int64 = -1

type paddedInt64 struct {
	v atomic.Int64
	_ [7]int64 // avoid false sharing between worker slots
}

// NewReaderTable creates a table with n worker slots.
func NewReaderTable(n int) *ReaderTable {
	rt := &ReaderTable{slots: make([]paddedInt64, n)}
	for i := range rt.slots {
		rt.slots[i].v.Store(Idle)
	}
	return rt
}

// Len returns the number of slots.
func (rt *ReaderTable) Len() int { return len(rt.slots) }

// Enter records that worker slot is reading at epoch tre.
func (rt *ReaderTable) Enter(slot int, tre int64) { rt.slots[slot].v.Store(tre) }

// Exit clears worker slot.
func (rt *ReaderTable) Exit(slot int) { rt.slots[slot].v.Store(Idle) }

// MinActive returns the minimum epoch visible to any ongoing transaction,
// lower-bounded by fallback (normally the current GRE): future transactions
// will get a TRE >= GRE, so versions invisible below min(active, GRE+1) are
// dead.
func (rt *ReaderTable) MinActive(fallback int64) int64 {
	min := fallback
	for i := range rt.slots {
		if v := rt.slots[i].v.Load(); v != Idle && v < min {
			min = v
		}
	}
	return min
}

// LockTable implements the per-vertex write locks. The paper uses a huge
// futex array indexed by vertex ID; Go's sync.Mutex parks waiters in the
// runtime just like a futex, so a striped mutex array gives the same
// behaviour with bounded memory. Locks are acquired with a deadline —
// timing out is the paper's deadlock-avoidance mechanism (the transaction
// rolls back and restarts).
type LockTable struct {
	stripes []lockStripe
	mask    uint64
}

type lockStripe struct {
	mu sync.Mutex
	_  [6]int64
}

// NewLockTable creates a lock table with at least n stripes (rounded up to a
// power of two).
func NewLockTable(n int) *LockTable {
	sz := 1
	for sz < n {
		sz <<= 1
	}
	return &LockTable{stripes: make([]lockStripe, sz), mask: uint64(sz - 1)}
}

// StripeOf returns the stripe index guarding vertex v. Two vertices with
// the same stripe share a lock, so lock holders must deduplicate by stripe
// (not by vertex) to avoid self-deadlock.
func (lt *LockTable) StripeOf(v uint64) uint64 {
	// splitmix finalizer so adjacent vertex IDs spread across stripes.
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	return (v ^ (v >> 27)) & lt.mask
}

func (lt *LockTable) stripe(v uint64) *lockStripe {
	return &lt.stripes[lt.StripeOf(v)]
}

// ErrLockTimeout is returned by TryLockCtx when the lock could not be
// acquired before the timeout elapsed.
var ErrLockTimeout = errors.New("mvcc: lock wait timed out")

// TryLock attempts to lock vertex v, spinning and yielding until the
// deadline. It returns false on timeout (caller must abort and may retry
// the whole transaction). Unlike TryLockCtx it is bounded by the timeout
// alone — there is no context to mint, so none is.
func (lt *LockTable) TryLock(v uint64, timeout time.Duration) bool {
	return lt.tryLock(nil, nil, v, timeout) == nil
}

// TryLockCtx is TryLock with cancellation: it returns nil once the lock is
// held, ctx.Err() if the context is done first, or ErrLockTimeout after
// timeout. The spin loop's backoff is capped well below typical deadlines,
// so cancellation is observed promptly even under contention.
func (lt *LockTable) TryLockCtx(ctx context.Context, v uint64, timeout time.Duration) error {
	return lt.tryLock(ctx.Done(), ctx.Err, v, timeout)
}

// tryLock is the shared spin loop. done and ctxErr are the cancellation
// signal and its error source (both nil for the uncancellable TryLock).
func (lt *LockTable) tryLock(done <-chan struct{}, ctxErr func() error, v uint64, timeout time.Duration) error {
	s := lt.stripe(v)
	if s.mu.TryLock() {
		return nil
	}
	deadline := time.Now().Add(timeout)
	backoff := time.Microsecond
	for {
		if s.mu.TryLock() {
			return nil
		}
		select {
		case <-done:
			return ctxErr()
		default:
		}
		if time.Now().After(deadline) {
			return ErrLockTimeout
		}
		runtime.Gosched()
		time.Sleep(backoff)
		if backoff < 64*time.Microsecond {
			backoff *= 2
		}
	}
}

// Lock blocks until the lock for vertex v is held. Used by internal tasks
// (compaction) that cannot deadlock because they lock one vertex at a time.
func (lt *LockTable) Lock(v uint64) { lt.stripe(v).mu.Lock() }

// Unlock releases the lock for vertex v.
func (lt *LockTable) Unlock(v uint64) { lt.stripe(v).mu.Unlock() }

// UnlockStripe releases a lock by its stripe index (from StripeOf).
func (lt *LockTable) UnlockStripe(s uint64) { lt.stripes[s].mu.Unlock() }
