package tel

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"livegraph/internal/mvcc"
	"livegraph/internal/storage"
)

func newHandle() *storage.Handle { return storage.NewAllocator(0).NewHandle() }

func TestNewMinimalBlockIsOneCacheLine(t *testing.T) {
	h := newHandle()
	tl := New(h, 1, 0, 1, 0)
	// 64-byte block: 6 header words + no filter + 4 entry words = 10 words
	// does NOT fit in 8 words, so the minimal single-edge block is class 1
	// (128 B) in this layout. Verify it holds exactly the advertised entry.
	if tl.EntryCap() < 1 {
		t.Fatalf("minimal TEL holds %d entries, want >= 1", tl.EntryCap())
	}
	if tl.Block.Class > 1 {
		t.Fatalf("minimal TEL uses class %d, want <= 1", tl.Block.Class)
	}
}

func TestAppendPublishScan(t *testing.T) {
	h := newHandle()
	tl := New(h, 7, 0, 8, 256)
	n, pl := 0, 0
	for i := 0; i < 5; i++ {
		pl = tl.Append(n, int64(100+i), -42, []byte{byte(i)}, pl)
		n++
	}
	// Before publish, a reader at any epoch sees nothing.
	it := tl.Scan(tl.Len(), 10, 0)
	if it.Next() != -1 {
		t.Fatal("unpublished entries visible to reader")
	}
	// The writing transaction (tid 42) sees its own writes.
	it = tl.Scan(n, 10, 42)
	count := 0
	for it.Next() != -1 {
		count++
	}
	if count != 5 {
		t.Fatalf("writer sees %d own entries, want 5", count)
	}
	// Apply phase: flip timestamps then publish.
	for i := 0; i < n; i++ {
		tl.SetCreation(i, 3)
	}
	tl.Publish(n, pl, 3)
	if tl.Len() != 5 || tl.PropLen() != 5 || tl.CommitTS() != 3 {
		t.Fatalf("publish: len=%d props=%d ct=%d", tl.Len(), tl.PropLen(), tl.CommitTS())
	}
	// Reader at epoch 3 sees all, epoch 2 sees none.
	for _, tc := range []struct {
		tre  int64
		want int
	}{{3, 5}, {2, 0}, {100, 5}} {
		it := tl.Scan(tl.Len(), tc.tre, 0)
		got := 0
		for it.Next() != -1 {
			got++
		}
		if got != tc.want {
			t.Fatalf("tre=%d: got %d entries, want %d", tc.tre, got, tc.want)
		}
	}
}

func TestScanNewestFirstAndProps(t *testing.T) {
	h := newHandle()
	tl := New(h, 1, 0, 8, 256)
	n, pl := 0, 0
	for i := 0; i < 4; i++ {
		pl = tl.Append(n, int64(10+i), 1, []byte(fmt.Sprintf("p%d", i)), pl)
		n++
	}
	tl.Publish(n, pl, 1)
	it := tl.Scan(tl.Len(), 1, 0)
	var dsts []int64
	var props []string
	for {
		i := it.Next()
		if i < 0 {
			break
		}
		dsts = append(dsts, tl.Dst(i))
		props = append(props, string(tl.Props(i)))
	}
	want := []int64{13, 12, 11, 10}
	for i := range want {
		if dsts[i] != want[i] {
			t.Fatalf("scan order %v, want %v", dsts, want)
		}
		if props[i] != fmt.Sprintf("p%d", want[i]-10) {
			t.Fatalf("props %v", props)
		}
	}
}

func TestInvalidationHidesOldVersion(t *testing.T) {
	h := newHandle()
	tl := New(h, 1, 0, 8, 128)
	// Edge to 50 created at ts 1.
	pl := tl.Append(0, 50, 1, []byte("v1"), 0)
	tl.Publish(1, pl, 1)
	// Update at ts 2: invalidate entry 0, append new version.
	tl.SetInvalidation(0, 2)
	pl = tl.Append(1, 50, 2, []byte("v2"), pl)
	tl.Publish(2, pl, 2)

	// Reader at epoch 1 sees v1; at epoch 2 sees v2 only.
	i := tl.FindLatest(50, tl.Len(), 1, 0)
	if i != 0 || string(tl.Props(i)) != "v1" {
		t.Fatalf("epoch 1: entry %d", i)
	}
	i = tl.FindLatest(50, tl.Len(), 2, 0)
	if i != 1 || string(tl.Props(i)) != "v2" {
		t.Fatalf("epoch 2: entry %d", i)
	}
	// A full scan at epoch 2 yields exactly one visible entry for dst 50.
	it := tl.Scan(tl.Len(), 2, 0)
	count := 0
	for it.Next() != -1 {
		count++
	}
	if count != 1 {
		t.Fatalf("epoch 2 scan sees %d entries, want 1", count)
	}
}

func TestBloomEarlyRejection(t *testing.T) {
	h := newHandle()
	tl := New(h, 1, 0, 64, 1024)
	if tl.FilterEmpty() {
		t.Skip("block too small for a filter at this class")
	}
	pl := 0
	for i := 0; i < 32; i++ {
		pl = tl.Append(i, int64(i*2), 1, nil, pl)
	}
	tl.Publish(32, pl, 1)
	for i := 0; i < 32; i++ {
		if !tl.MayContain(int64(i * 2)) {
			t.Fatalf("false negative for dst %d", i*2)
		}
	}
	// Odd destinations were never added; most must be rejected.
	rejected := 0
	for i := 0; i < 1000; i++ {
		if !tl.MayContain(int64(i*2 + 1)) {
			rejected++
		}
	}
	if rejected < 900 {
		t.Fatalf("bloom rejected only %d/1000 absent keys", rejected)
	}
}

func TestCopyAllFromUpgrade(t *testing.T) {
	h := newHandle()
	small := New(h, 9, 3, 4, 64)
	n, pl := 0, 0
	for i := 0; i < 4; i++ {
		pl = small.Append(n, int64(i), 1, []byte{byte(i), byte(i)}, pl)
		n++
	}
	small.Publish(n, pl, 1)
	small.SetInvalidation(1, 2) // one deleted version

	big := New(h, 9, 3, 16, 256)
	big.CopyAllFrom(small, n, pl)

	if big.Src() != 9 || big.Label() != 3 {
		t.Fatal("header not copied")
	}
	if big.Len() != small.Len() || big.PropLen() != small.PropLen() || big.CommitTS() != small.CommitTS() {
		t.Fatal("committed sizes not copied")
	}
	if big.Prev != small {
		t.Fatal("prev pointer not set")
	}
	for i := 0; i < n; i++ {
		if big.Dst(i) != small.Dst(i) || big.Creation(i) != small.Creation(i) ||
			big.Invalidation(i) != small.Invalidation(i) ||
			!bytes.Equal(big.Props(i), small.Props(i)) {
			t.Fatalf("entry %d mismatch after copy", i)
		}
	}
	// Bloom filter must be rebuilt (no false negatives on copied dsts).
	for i := 0; i < n; i++ {
		if !big.MayContain(int64(i)) {
			t.Fatalf("bloom false negative after upgrade for %d", i)
		}
	}
}

func TestCompactAppendRepacksProps(t *testing.T) {
	h := newHandle()
	src := New(h, 1, 0, 8, 256)
	pl := 0
	pl = src.Append(0, 10, 1, []byte("aaaa"), pl)
	pl = src.Append(1, 11, 1, []byte("bbbb"), pl)
	pl = src.Append(2, 12, 1, []byte("cccc"), pl)
	src.Publish(3, pl, 1)

	dst := New(h, 1, 0, 8, 256)
	// Keep only entries 0 and 2.
	npl := dst.CompactAppend(src, 0, 0, 0)
	npl = dst.CompactAppend(src, 2, 1, npl)
	dst.Publish(2, npl, 1)

	if dst.Len() != 2 {
		t.Fatal("compacted length wrong")
	}
	if string(dst.Props(0)) != "aaaa" || string(dst.Props(1)) != "cccc" {
		t.Fatalf("props %q %q", dst.Props(0), dst.Props(1))
	}
	if dst.PropLen() != 8 {
		t.Fatalf("prop len %d, want 8 (repacked)", dst.PropLen())
	}
}

func TestFits(t *testing.T) {
	h := newHandle()
	tl := New(h, 1, 0, 4, 32)
	n, pl := 0, 0
	for tl.Fits(n, pl, 4) {
		pl = tl.Append(n, int64(n), 1, []byte("abcd"), pl)
		n++
	}
	if n == 0 {
		t.Fatal("nothing fit")
	}
	if n > tl.EntryCap() {
		t.Fatal("overfilled entries")
	}
	if pl > tl.PropCap() {
		t.Fatal("overfilled props")
	}
}

func TestFindLatestOwnWrites(t *testing.T) {
	h := newHandle()
	tl := New(h, 1, 0, 8, 128)
	pl := tl.Append(0, 5, 1, []byte("old"), 0)
	tl.Publish(1, pl, 1)

	const tid = 77
	// Transaction tid updates edge 5: invalidate entry 0 with -tid, append
	// private new version.
	tl.SetInvalidation(0, -tid)
	pl = tl.Append(1, 5, -tid, []byte("new"), pl)

	// The writer finds its own new version.
	if i := tl.FindLatest(5, 2, 1, tid); i != 1 {
		t.Fatalf("writer FindLatest = %d, want 1", i)
	}
	// Another reader still finds the committed version.
	if i := tl.FindLatest(5, tl.Len(), 1, 99); i != 0 {
		t.Fatalf("reader FindLatest = %d, want 0", i)
	}
	// Abort: revert invalidation.
	if !tl.CASInvalidation(0, -tid, mvcc.NullTS) {
		t.Fatal("CAS revert failed")
	}
	if i := tl.FindLatest(5, tl.Len(), 1, 99); i != 0 {
		t.Fatal("entry lost after abort revert")
	}
}

// TestConcurrentReadDuringPublish hammers the publish/scan race: readers
// must only ever see 0 or k*batch committed entries, never a torn state.
func TestConcurrentReadDuringPublish(t *testing.T) {
	h := newHandle()
	const batches, batch = 32, 4
	tl := New(h, 1, 0, batches*batch, 4096)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				tre := int64(1 << 40) // far future: sees all committed
				it := tl.Scan(tl.Len(), tre, 0)
				count := 0
				for {
					i := it.Next()
					if i < 0 {
						break
					}
					c := tl.Creation(i)
					if c <= 0 {
						errs <- fmt.Sprintf("saw uncommitted creation %d", c)
						return
					}
					count++
				}
				if count%batch != 0 {
					errs <- fmt.Sprintf("torn batch: %d entries", count)
					return
				}
			}
		}()
	}
	n, pl := 0, 0
	for b := 0; b < batches; b++ {
		start := n
		for i := 0; i < batch; i++ {
			pl = tl.Append(n, int64(n), -1000, nil, pl)
			n++
		}
		ts := int64(b + 1)
		for i := start; i < n; i++ {
			tl.SetCreation(i, ts)
		}
		tl.Publish(n, pl, ts)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

func TestScanVisibilityProperty(t *testing.T) {
	// Build a TEL with k versions of the same edge, each [i, i+1) lifetime;
	// at any epoch e < k exactly one version is visible.
	h := newHandle()
	const k = 16
	tl := New(h, 1, 0, k, 256)
	pl := 0
	for i := 0; i < k; i++ {
		pl = tl.Append(i, 99, int64(i+1), []byte{byte(i)}, pl)
		if i > 0 {
			tl.SetInvalidation(i-1, int64(i+1))
		}
	}
	tl.Publish(k, pl, k)
	f := func(e uint8) bool {
		tre := int64(e%k) + 1
		i := tl.FindLatest(99, tl.Len(), tre, 0)
		return i == int(tre-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSequentialScan(b *testing.B) {
	h := newHandle()
	const n = 1024
	tl := New(h, 1, 0, n, n)
	pl := 0
	for i := 0; i < n; i++ {
		pl = tl.Append(i, int64(i), 1, nil, pl)
	}
	tl.Publish(n, pl, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := tl.Scan(tl.Len(), 1, 0)
		for it.Next() != -1 {
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/edge")
}

func BenchmarkAppend(b *testing.B) {
	h := newHandle()
	tl := New(h, 1, 0, 1<<20, 8)
	n, pl := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n >= tl.EntryCap() {
			n, pl = 0, 0
		}
		pl = tl.Append(n, int64(i), -1, nil, pl)
		n++
	}
}
