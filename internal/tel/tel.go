// Package tel implements the Transactional Edge Log (paper §3, Figure 3):
// LiveGraph's multi-versioned, log-structured adjacency list stored in one
// contiguous block so that scans are purely sequential even under concurrent
// transactions.
//
// Block layout (within a storage.Block's word region):
//
//	word 0              source vertex ID
//	word 1              label
//	word 2              commit timestamp CT        (atomic)
//	word 3              committed log size LS      (atomic, in entries)
//	word 4              committed property size PS (atomic, in bytes)
//	word 5              dead property bytes DB     (atomic, in bytes)
//	words 6 .. 6+F      blocked Bloom filter (F = bloom.WordsFor(block size))
//	words 6+F ..        fixed-size edge log entries, 4 words each
//
// An edge log entry is 32 bytes: destination vertex, creation timestamp,
// invalidation timestamp, and a property reference (offset|size into the
// block's byte region). Both timestamps are aligned 8-byte words accessed
// with sync/atomic — the Go analogue of the paper's cache-aligned fields
// that let readers check entry visibility without locks mid-scan.
//
// The paper appends entries right-to-left and properties left-to-right
// within one allocation; here entries grow upward in the word region and
// properties upward in the parallel byte region of the same block. Scans
// iterate newest-to-oldest (descending index), which is the same sequential,
// time-locality-friendly order.
//
// Writers (one at a time per TEL, enforced by the vertex lock) append
// tentatively past the committed LS; the entry count and property length a
// transaction sees for its own TEL writes are carried in transaction state
// and published to LS/PS only at apply time, so aborted appends are simply
// overwritten by the next writer.
package tel

import (
	"sync/atomic"

	"livegraph/internal/bloom"
	"livegraph/internal/mvcc"
	"livegraph/internal/storage"
)

const (
	// HeaderWords is the fixed TEL header size in 8-byte words.
	HeaderWords = 6
	// EntryWords is the fixed edge log entry size in 8-byte words (32 B).
	EntryWords = 4

	propOffShift = 24
	propSizeMask = (1 << propOffShift) - 1
)

const (
	hdrSrc = iota
	hdrLabel
	hdrCT
	hdrLS
	hdrPS
	hdrDead
)

// TEL wraps a storage block as a Transactional Edge Log. Prev links to the
// superseded version of this adjacency list (after an upgrade or
// compaction), mirroring the paper's per-TEL "previous" pointers.
type TEL struct {
	Block *storage.Block
	Prev  *TEL

	entryBase int // word index where entries start
	entryCap  int
	filter    bloom.Filter
}

// New allocates a TEL for (src, label) able to hold at least minEntries
// edge log entries and minPropBytes of property payload.
func New(h *storage.Handle, src, label int64, minEntries, minPropBytes int) *TEL {
	class := classFor(minEntries, minPropBytes)
	b := h.Alloc(class)
	t := wrap(b)
	b.Words[hdrSrc] = src
	b.Words[hdrLabel] = label
	b.Words[hdrCT] = 0
	b.Words[hdrLS] = 0
	b.Words[hdrPS] = 0
	// Arena blocks are recycled; a stale counter would overstate pressure.
	b.Words[hdrDead] = 0
	return t
}

// classFor picks the smallest block class that fits the header, filter,
// entries and property bytes.
func classFor(entries, propBytes int) int {
	class := 0
	for {
		words := storage.WordCap(class)
		f := bloom.WordsFor(words)
		capEntries := (words - HeaderWords - f) / EntryWords
		if capEntries >= entries && storage.ByteCap(class) >= propBytes {
			return class
		}
		class++
		if class >= storage.NumClasses {
			panic("tel: adjacency list exceeds maximum block size")
		}
	}
}

// Wrap reinterprets an existing block as a TEL (used by recovery and tests).
func Wrap(b *storage.Block) *TEL { return wrap(b) }

func wrap(b *storage.Block) *TEL {
	f := bloom.WordsFor(len(b.Words))
	base := HeaderWords + f
	return &TEL{
		Block:     b,
		entryBase: base,
		entryCap:  (len(b.Words) - base) / EntryWords,
		filter:    bloom.View(b.Words[HeaderWords : HeaderWords+f]),
	}
}

// Src returns the source vertex this adjacency list belongs to.
func (t *TEL) Src() int64 { return t.Block.Words[hdrSrc] }

// Label returns the edge label of this adjacency list.
func (t *TEL) Label() int64 { return t.Block.Words[hdrLabel] }

// EntryCap returns how many edge log entries the block can hold.
func (t *TEL) EntryCap() int { return t.entryCap }

// PropCap returns the property byte capacity of the block.
func (t *TEL) PropCap() int { return len(t.Block.Bytes) }

// CommitTS returns the TEL's commit timestamp CT: the timestamp of the
// latest transaction that modified it. Writers compare their read epoch
// against CT to detect write-write conflicts cheaply (first-committer-wins)
// instead of scanning the log.
func (t *TEL) CommitTS() int64 { return atomic.LoadInt64(&t.Block.Words[hdrCT]) }

// Len returns the committed number of edge log entries (LS).
func (t *TEL) Len() int { return int(atomic.LoadInt64(&t.Block.Words[hdrLS])) }

// PropLen returns the committed property byte length (PS).
func (t *TEL) PropLen() int { return int(atomic.LoadInt64(&t.Block.Words[hdrPS])) }

// DeadBytes returns the exact bytes held by invalidated entries in this TEL:
// entry words plus property payload for every entry whose invalidation
// timestamp was flipped to a committed epoch. Maintained at apply time, it
// gives compaction pressure and the checkpoint rebase trigger an exact
// figure instead of the write-path heuristic estimate.
func (t *TEL) DeadBytes() int64 { return atomic.LoadInt64(&t.Block.Words[hdrDead]) }

// AddDeadBytes accumulates n bytes of newly dead entry+property payload.
func (t *TEL) AddDeadBytes(n int64) { atomic.AddInt64(&t.Block.Words[hdrDead], n) }

// SetDeadBytes overwrites the dead-byte counter (used when a rebuilt block
// recomputes its dead set, e.g. compaction retaining history entries).
func (t *TEL) SetDeadBytes(n int64) { atomic.StoreInt64(&t.Block.Words[hdrDead], n) }

// EntryDeadBytes returns the exact byte cost of entry i going dead: its
// fixed entry words plus its property payload.
func (t *TEL) EntryDeadBytes(i int) int64 {
	return int64(EntryWords*8 + len(t.Props(i)))
}

// Publish atomically exposes n entries / propLen property bytes and stamps
// the commit timestamp — the apply-phase "update tail" step. The entry
// contents must already be fully written; the atomic LS store is the release
// barrier concurrent readers synchronise on.
func (t *TEL) Publish(n, propLen int, ts int64) {
	atomic.StoreInt64(&t.Block.Words[hdrCT], ts)
	atomic.StoreInt64(&t.Block.Words[hdrPS], int64(propLen))
	atomic.StoreInt64(&t.Block.Words[hdrLS], int64(n))
}

// Fits reports whether one more entry with propBytes of properties fits
// given the tentative sizes (n entries, propLen bytes already used).
func (t *TEL) Fits(n, propLen, propBytes int) bool {
	return n < t.entryCap && propLen+propBytes <= len(t.Block.Bytes)
}

// Append writes an edge log entry at slot n with the given destination,
// creation timestamp (normally -TID during the work phase) and properties,
// whose bytes are copied into the block at offset propLen. It returns the
// new property length. The caller must hold the vertex lock and must have
// checked Fits.
//
// The entry's invalidation timestamp is set to NullTS. The Bloom filter is
// updated so later operations on the same destination take the scan path.
func (t *TEL) Append(n int, dst, creation int64, props []byte, propLen int) int {
	w := t.entryBase + n*EntryWords
	words := t.Block.Words
	words[w+0] = dst
	copy(t.Block.Bytes[propLen:], props)
	words[w+3] = int64(propLen)<<propOffShift | int64(len(props))
	// Timestamps are stored atomically: a concurrent reader racing past the
	// committed LS of a *previous* version must never observe a torn word.
	atomic.StoreInt64(&words[w+2], mvcc.NullTS)
	atomic.StoreInt64(&words[w+1], creation)
	t.filter.Add(uint64(dst))
	return propLen + len(props)
}

// Dst returns entry i's destination vertex.
func (t *TEL) Dst(i int) int64 { return t.Block.Words[t.entryBase+i*EntryWords] }

// Creation returns entry i's creation timestamp.
func (t *TEL) Creation(i int) int64 {
	return atomic.LoadInt64(&t.Block.Words[t.entryBase+i*EntryWords+1])
}

// SetCreation atomically stores entry i's creation timestamp (the apply
// phase's -TID → TWE flip).
func (t *TEL) SetCreation(i int, ts int64) {
	atomic.StoreInt64(&t.Block.Words[t.entryBase+i*EntryWords+1], ts)
}

// Invalidation returns entry i's invalidation timestamp.
func (t *TEL) Invalidation(i int) int64 {
	return atomic.LoadInt64(&t.Block.Words[t.entryBase+i*EntryWords+2])
}

// SetInvalidation atomically stores entry i's invalidation timestamp.
func (t *TEL) SetInvalidation(i int, ts int64) {
	atomic.StoreInt64(&t.Block.Words[t.entryBase+i*EntryWords+2], ts)
}

// CASInvalidation atomically replaces entry i's invalidation timestamp if it
// still holds old. Used when aborting (revert -TID → NULL).
func (t *TEL) CASInvalidation(i int, old, new int64) bool {
	return atomic.CompareAndSwapInt64(&t.Block.Words[t.entryBase+i*EntryWords+2], old, new)
}

// Props returns entry i's property bytes (a sub-slice of the block; callers
// must copy if they retain it beyond the transaction).
func (t *TEL) Props(i int) []byte {
	ref := t.Block.Words[t.entryBase+i*EntryWords+3]
	off := ref >> propOffShift
	size := ref & propSizeMask
	return t.Block.Bytes[off : off+size]
}

// pageWords is 4096 bytes of words — the unit of the out-of-core paging
// model (one OS page).
const pageWords = 512

// EntryPage returns the global arena 4KB-page index that entry i's words
// live on. The out-of-core simulation charges page faults at this
// granularity, like mmap over the paper's single file: small neighboring
// blocks share pages, and a partial newest-first scan of a large block
// touches only its tail pages.
func (t *TEL) EntryPage(i int) int64 {
	return (t.Block.Off + int64(t.entryBase+i*EntryWords)) / pageWords
}

// FirstPage returns the global page of the block's header.
func (t *TEL) FirstPage() int64 { return t.Block.Off / pageWords }

// LastPage returns the global page of the block's final word.
func (t *TEL) LastPage() int64 {
	return (t.Block.Off + int64(len(t.Block.Words)) - 1) / pageWords
}

// MayContain consults the embedded Bloom filter: false means dst was
// certainly never inserted into this block, so an insertion can skip the
// previous-version scan (the paper's "early rejection").
func (t *TEL) MayContain(dst int64) bool { return t.filter.MayContain(uint64(dst)) }

// FilterEmpty reports whether the block is too small to carry a filter.
func (t *TEL) FilterEmpty() bool { return t.filter.Empty() }

// FindLatest scans tail-to-head over the first n entries for the most
// recent entry for dst that is visible at (tre, tid) — the lookup an edge
// update/delete performs to find the version it must invalidate, and the
// read path for a single edge. Returns the entry index or -1.
func (t *TEL) FindLatest(dst int64, n int, tre, tid int64) int {
	for i := n - 1; i >= 0; i-- {
		if t.Dst(i) != dst {
			continue
		}
		if mvcc.Visible(t.Creation(i), t.Invalidation(i), tre, tid) {
			return i
		}
	}
	return -1
}

// CopyAllFrom bulk-copies src's first n entries and propLen property bytes
// into t (which must be empty and large enough), preserving property
// offsets, and rebuilds the Bloom filter. This is the block "upgrade" path:
// the new block carries the identical committed prefix, so swapping the
// index pointer is safe mid-transaction.
func (t *TEL) CopyAllFrom(src *TEL, n, propLen int) {
	copy(t.Block.Words[t.entryBase:], src.Block.Words[src.entryBase:src.entryBase+n*EntryWords])
	copy(t.Block.Bytes, src.Block.Bytes[:propLen])
	t.Block.Words[hdrSrc] = src.Block.Words[hdrSrc]
	t.Block.Words[hdrLabel] = src.Block.Words[hdrLabel]
	atomic.StoreInt64(&t.Block.Words[hdrCT], src.CommitTS())
	atomic.StoreInt64(&t.Block.Words[hdrPS], int64(src.PropLen()))
	atomic.StoreInt64(&t.Block.Words[hdrLS], int64(src.Len()))
	atomic.StoreInt64(&t.Block.Words[hdrDead], src.DeadBytes())
	t.filter.Reset()
	for i := 0; i < n; i++ {
		t.filter.Add(uint64(t.Dst(i)))
	}
	t.Prev = src
}

// CompactAppend copies entry i of src (with its properties) to slot n of t,
// re-packing properties at propLen. Returns the new property length. Used
// by compaction, which keeps only entries still visible to some epoch.
func (t *TEL) CompactAppend(src *TEL, i, n, propLen int) int {
	props := src.Props(i)
	w := t.entryBase + n*EntryWords
	words := t.Block.Words
	words[w+0] = src.Dst(i)
	copy(t.Block.Bytes[propLen:], props)
	words[w+3] = int64(propLen)<<propOffShift | int64(len(props))
	atomic.StoreInt64(&words[w+2], src.Invalidation(i))
	atomic.StoreInt64(&words[w+1], src.Creation(i))
	t.filter.Add(uint64(src.Dst(i)))
	return propLen + len(props)
}

// Iter is a purely sequential scan over the first n entries of a TEL,
// newest first, yielding only entries visible at (tre, tid). It performs no
// allocation and no random access: visibility is decided from the two
// timestamps embedded in each fixed-size entry (paper §4, "Sequential
// adjacency list scans").
type Iter struct {
	t        *TEL
	i        int
	tre, tid int64
}

// Scan returns an iterator over the first n entries (pass t.Len() for a
// committed snapshot scan, or the transaction's tentative count to include
// its own writes).
func (t *TEL) Scan(n int, tre, tid int64) Iter {
	return Iter{t: t, i: n, tre: tre, tid: tid}
}

// Next advances to the next visible entry, returning its index, or -1 when
// the scan is complete.
func (it *Iter) Next() int {
	for it.i--; it.i >= 0; it.i-- {
		if mvcc.Visible(it.t.Creation(it.i), it.t.Invalidation(it.i), it.tre, it.tid) {
			return it.i
		}
	}
	return -1
}

// NextWhere is Next with a destination predicate pushed into the scan
// loop: entries whose destination fails keep are skipped before the
// visibility check — one plain word load against two atomic timestamp
// loads — which is what makes predicate pushdown cheaper than
// materialize-then-filter. Because the predicate also runs on entries that
// would fail the visibility check, keep must be a pure function of the
// destination ID (the traversal planner only fuses such predicates).
func (it *Iter) NextWhere(keep func(dst int64) bool) int {
	for it.i--; it.i >= 0; it.i-- {
		if !keep(it.t.Dst(it.i)) {
			continue
		}
		if mvcc.Visible(it.t.Creation(it.i), it.t.Invalidation(it.i), it.tre, it.tid) {
			return it.i
		}
	}
	return -1
}
