// Package livegraph is a transactional graph storage system with purely
// sequential adjacency list scans — a from-scratch Go implementation of
// "LiveGraph: A Transactional Graph Storage System with Purely Sequential
// Adjacency List Scans" (Zhu et al., VLDB 2020).
//
// LiveGraph stores each vertex's adjacency list (one per edge label) in a
// Transactional Edge Log (TEL): a contiguous, multi-versioned log of edge
// insertions, updates and deletions. Every edge log entry embeds a creation
// and an invalidation timestamp, so a scan decides visibility from data it
// is already streaming over — scans never chase pointers or consult side
// structures, even while concurrent transactions are committing. Snapshot
// isolation comes from an epoch-based MVCC protocol with group commit.
//
// # Quick start
//
//	g, err := livegraph.Open(livegraph.Options{})   // in-memory
//	defer g.Close()
//
//	tx, _ := g.Begin()
//	alice, _ := tx.AddVertex([]byte("alice"))
//	bob, _   := tx.AddVertex([]byte("bob"))
//	tx.InsertEdge(alice, livegraph.Label(0), bob, []byte("2020-08-29"))
//	tx.Commit()
//
//	r, _ := g.BeginRead()                 // consistent snapshot
//	it := r.Neighbors(alice, 0)           // purely sequential scan
//	for it.Next() {
//	    fmt.Println(it.Dst(), string(it.Props()))
//	}
//	r.Commit()
//
// Set Options.Dir for durability (write-ahead log + checkpoints); pass an
// iosim device profile to model Optane/NAND persistence hardware, and a
// page cache to simulate out-of-core execution.
//
// # Architecture: the sharded commit pipeline
//
// Commits go through the paper's three phases — work, persist, apply —
// with a group-commit transaction manager: a committing transaction
// enqueues itself, and the leader that wins the commit lock drains the
// queue and commits the whole group.
//
// The persist phase is sharded. Every transaction partitions its WAL
// records by vertex-ownership shard as it executes; at commit the leader
// merges the group's records into per-shard batches and the segmented log
// (Options.WALShards files per segment) writes and fsyncs all
// participating shards concurrently, each on its own simulated device
// channel. A commit marker recording the group's per-shard record counts
// rides with the first participating shard, making cross-shard recovery
// atomic: replay merge-reads all shards in epoch order and rolls back to
// the last group durable on every shard, so a crash that tears shards at
// different epochs never resurrects half a commit group.
//
// Epoch advancement is untouched by the fan-out: the global read epoch
// advances only after the whole group is durable everywhere and fully
// applied, which is what preserves snapshot isolation. Checkpoints rotate
// all shard files at a quiescent point and record per-shard truncation
// epochs in the checkpoint metadata.
//
// Write transactions that return ErrConflict or ErrLockTimeout have been
// aborted under first-committer-wins; retry them (see IsRetryable).
//
// For whole-graph analytics, Graph.Snapshot pins a consistent view that is
// safe for concurrent use by parallel workers (see internal/analytics for
// PageRank and Connected Components kernels built on it).
package livegraph

import (
	"livegraph/internal/core"
)

// VertexID identifies a vertex; IDs are dense, starting at 0.
type VertexID = core.VertexID

// Label identifies an edge label; edges of one vertex are grouped into one
// adjacency list per label.
type Label = core.Label

// Options configures a Graph; the zero value is a volatile in-memory graph.
type Options = core.Options

// Graph is a LiveGraph instance.
type Graph = core.Graph

// Tx is a transaction (see Graph.Begin and Graph.BeginRead).
type Tx = core.Tx

// EdgeIter is a purely sequential adjacency list iterator.
type EdgeIter = core.EdgeIter

// Snapshot is a pinned consistent read-only view for analytics.
type Snapshot = core.Snapshot

// GraphStats aggregates engine counters.
type GraphStats = core.GraphStats

// Errors returned by transactions. Conflict and lock-timeout errors mean
// the transaction was aborted and should be retried.
var (
	ErrConflict    = core.ErrConflict
	ErrLockTimeout = core.ErrLockTimeout
	ErrTxDone      = core.ErrTxDone
	ErrReadOnly    = core.ErrReadOnly
	ErrNotFound    = core.ErrNotFound
	ErrClosed      = core.ErrClosed
	// ErrHistoryGone is returned by Graph.SnapshotAt for epochs older than
	// Options.HistoryRetention.
	ErrHistoryGone = core.ErrHistoryGone
)

// Open creates (or, when Options.Dir is set, recovers) a graph.
func Open(opts Options) (*Graph, error) { return core.Open(opts) }

// IsRetryable reports whether err is a transient transaction abort
// (conflict or lock timeout) worth retrying.
func IsRetryable(err error) bool { return core.IsRetryable(err) }

// Update runs fn in a write transaction, retrying on transient aborts up to
// maxRetries times. fn must be idempotent. If fn returns an error the
// transaction is aborted and the error returned.
func Update(g *Graph, maxRetries int, fn func(tx *Tx) error) error {
	var err error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		var tx *Tx
		tx, err = g.Begin()
		if err != nil {
			return err
		}
		if err = fn(tx); err != nil {
			tx.Abort()
			if IsRetryable(err) {
				continue
			}
			return err
		}
		if err = tx.Commit(); err == nil {
			return nil
		}
		if !IsRetryable(err) {
			return err
		}
	}
	return err
}

// View runs fn in a read-only snapshot transaction.
func View(g *Graph, fn func(tx *Tx) error) error {
	tx, err := g.BeginRead()
	if err != nil {
		return err
	}
	defer tx.Commit()
	return fn(tx)
}
