// Package livegraph is a transactional graph storage system with purely
// sequential adjacency list scans — a from-scratch Go implementation of
// "LiveGraph: A Transactional Graph Storage System with Purely Sequential
// Adjacency List Scans" (Zhu et al., VLDB 2020).
//
// LiveGraph stores each vertex's adjacency list (one per edge label) in a
// Transactional Edge Log (TEL): a contiguous, multi-versioned log of edge
// insertions, updates and deletions. Every edge log entry embeds a creation
// and an invalidation timestamp, so a scan decides visibility from data it
// is already streaming over — scans never chase pointers or consult side
// structures, even while concurrent transactions are committing. Snapshot
// isolation comes from an epoch-based MVCC protocol with group commit.
//
// # Quick start
//
//	g, err := livegraph.Open(livegraph.Options{})   // in-memory
//	defer g.Close()
//
//	var alice, bob livegraph.VertexID
//	livegraph.Update(g, 3, func(tx *livegraph.Tx) error {
//	    alice, _ = tx.AddVertex([]byte("alice"))
//	    bob, _ = tx.AddVertex([]byte("bob"))
//	    return tx.InsertEdge(alice, livegraph.Label(0), bob, []byte("2020-08-29"))
//	})
//
//	livegraph.View(g, func(tx *livegraph.Tx) error {
//	    it := tx.Neighbors(alice, 0)      // purely sequential scan
//	    for it.Next() {
//	        fmt.Println(it.Dst(), string(it.Props()))
//	    }
//	    return nil
//	})
//
// Set Options.Dir for durability (write-ahead log + checkpoints); pass an
// iosim device profile to model Optane/NAND persistence hardware, and a
// page cache to simulate out-of-core execution.
//
// # API v2: readers, contexts, traversals
//
// Every way of reading the graph implements one interface. A transaction
// (*Tx) and a pinned analytics snapshot (*Snapshot) both satisfy Reader —
// GetVertex, GetEdge, Neighbors, Degree, ReadEpoch — so point lookups,
// adjacency scans, multi-hop traversals and whole-graph kernels are written
// once and run against either. Helpers that only read should accept a
// Reader, not a concrete type.
//
// Operations take contexts. Graph.BeginCtx / BeginReadCtx bound the wait
// for a worker slot; a write transaction's vertex-lock waits respect its
// context's deadline (returning ctx.Err() instead of blocking up to
// Options.LockTimeout); Tx.CommitCtx bounds the group-commit wait, turning
// a deadline into a definitive abort while the transaction is still queued
// (see CommitCtx for the in-flight case). UpdateCtx and ViewCtx are the
// context-aware forms of Update and View; the HTTP server (internal/server)
// threads each request's context through begin, lock and commit waits.
//
// Multi-hop reads compose with the traversal builder, which compiles to
// nested purely sequential TEL scans and keeps no intermediate state beyond
// the current frontier:
//
//	// friends-of-friends recommendations, two sequential hops
//	recs, err := livegraph.Traverse(alice).
//	    Out(lFriend).Out(lFriend).
//	    Filter(func(r livegraph.Reader, v livegraph.VertexID) bool { return v != alice }).
//	    Dedup().Limit(10).
//	    Run(ctx, tx)                       // tx, a snapshot — any Reader
//
//	// the same walk over last week's graph (temporal time travel)
//	old, err := livegraph.Traverse(alice).
//	    Out(lFriend).Out(lFriend).AsOf(epoch).
//	    RunGraph(ctx, g)                   // pins a snapshot at the epoch
//
// AsOf requires the epoch to be within Options.HistoryRetention; older
// epochs return ErrHistoryGone. The server exposes the same builder as
// GET /v1/traverse (including the parallel knob, as ?parallel=N).
//
// # The morsel-driven parallel execution engine
//
// Wide hops execute on a worker pool: the frontier is partitioned into
// fixed-size morsels that workers claim from an atomic cursor, each worker
// expanding into a private buffer through its own reused edge iterator,
// with a lock-striped sparse bitset arbitrating Dedup and atomic budgets
// enforcing Limit and MaxFrontier so early termination stops every worker.
// Each worker's scans remain purely sequential TEL streams — parallelism
// comes from expanding disjoint frontier morsels concurrently.
//
// The pool width comes from Traversal.Parallel, falling back to
// Options.TraversalParallelism, falling back to GOMAXPROCS. Parallel
// execution engages only on Readers that are safe for concurrent use
// (ParallelReader — a *Snapshot; a *Tx always runs sequentially) and only
// when the frontier is wide enough to repay dispatch; narrow frontiers and
// in-memory graphs on few cores are often fastest sequential, which is why
// the engine falls back automatically rather than forcing a pool. Under
// the out-of-core simulation workers overlap page-fault latency, so
// parallel traversals win there even on a single core. The analytics
// kernels (internal/analytics: PageRank, ConnComp, BFS, Degrees) dispatch
// vertex ranges and BFS frontiers through the same morsel engine.
//
// # Architecture: the sharded commit pipeline
//
// Commits go through the paper's three phases — work, persist, apply —
// with a group-commit transaction manager: a committing transaction
// enqueues itself, and the leader that wins the commit lock drains the
// queue and commits the whole group.
//
// The persist phase is sharded. Every transaction partitions its WAL
// records by vertex-ownership shard as it executes; at commit the leader
// merges the group's records into per-shard batches and the segmented log
// (Options.WALShards files per segment) writes and fsyncs all
// participating shards concurrently, each on its own simulated device
// channel. A commit marker recording the group's per-shard record counts
// rides with the first participating shard, making cross-shard recovery
// atomic: replay merge-reads all shards in epoch order and rolls back to
// the last group durable on every shard, so a crash that tears shards at
// different epochs never resurrects half a commit group.
//
// Epoch advancement is untouched by the fan-out: the global read epoch
// advances only after the whole group is durable everywhere and fully
// applied, which is what preserves snapshot isolation. Checkpoints rotate
// all shard files at a quiescent point and record per-shard truncation
// epochs in the checkpoint metadata.
//
// # Replication: read replicas with bounded staleness
//
// A durable graph's WAL is also its replication stream. The primary-side
// shipper (internal/repl, served by lgserver as GET /v1/repl/stream)
// tails the sharded log and ships complete commit groups, epoch-framed
// and resumable; a follower applies each group atomically with
// Graph.ApplyEpoch, advancing its read epoch only at group boundaries —
// so every snapshot on a replica is a transactionally consistent prefix
// of the primary's history. Followers reject local writes (ErrFollower),
// serve every read surface (point reads, traversals, analytics) at their
// applied epoch, and report lag in epochs and bytes via /v1/stats. The
// HTTP client routes reads across replicas under a staleness bound, with
// read-your-writes by default and failover to the primary.
//
// Write transactions that return ErrConflict or ErrLockTimeout have been
// aborted under first-committer-wins; retry them (see IsRetryable).
// Context cancellation and deadline errors also abort the transaction but
// are not retryable.
//
// For whole-graph analytics, Graph.Snapshot pins a consistent view that is
// safe for concurrent use by parallel workers (see internal/analytics for
// PageRank and Connected Components kernels built on it).
package livegraph

import (
	"context"

	"livegraph/internal/core"
)

// VertexID identifies a vertex; IDs are dense, starting at 0.
type VertexID = core.VertexID

// Label identifies an edge label; edges of one vertex are grouped into one
// adjacency list per label.
type Label = core.Label

// Options configures a Graph; the zero value is a volatile in-memory graph.
type Options = core.Options

// Graph is a LiveGraph instance.
type Graph = core.Graph

// Tx is a transaction (see Graph.Begin and Graph.BeginRead).
type Tx = core.Tx

// EdgeIter is a purely sequential adjacency list iterator.
type EdgeIter = core.EdgeIter

// Snapshot is a pinned consistent read-only view for analytics.
type Snapshot = core.Snapshot

// Reader is the unified read surface implemented by both *Tx and
// *Snapshot: GetVertex, GetEdge, Neighbors, Degree and ReadEpoch over one
// consistent epoch. Code that only reads the graph should accept a Reader.
type Reader = core.Reader

// ParallelReader marks a Reader that is safe for concurrent use by
// multiple goroutines; the traversal engine only fans hops out over
// ParallelReaders (*Snapshot qualifies, *Tx does not).
type ParallelReader = core.ParallelReader

// Traversal is a composable multi-hop traversal specification; build one
// with Traverse and execute it against any Reader or a Graph.
type Traversal = core.Traversal

// GraphStats aggregates engine counters.
type GraphStats = core.GraphStats

// Errors returned by transactions. Conflict and lock-timeout errors mean
// the transaction was aborted and should be retried.
var (
	ErrConflict    = core.ErrConflict
	ErrLockTimeout = core.ErrLockTimeout
	ErrTxDone      = core.ErrTxDone
	ErrReadOnly    = core.ErrReadOnly
	ErrNotFound    = core.ErrNotFound
	ErrClosed      = core.ErrClosed
	// ErrHistoryGone is returned by Graph.SnapshotAt and Traversal.AsOf
	// for epochs older than Options.HistoryRetention.
	ErrHistoryGone = core.ErrHistoryGone
	// ErrFollower is returned by Begin on a read replica (a graph fed by
	// Graph.ApplyEpoch / the replication stream): writes must go to the
	// primary. Reads are unaffected.
	ErrFollower = core.ErrFollower
	// ErrAsOfMismatch is returned by Traversal.Run when the traversal's
	// AsOf epoch differs from the supplied Reader's epoch.
	ErrAsOfMismatch = core.ErrAsOfMismatch
	// ErrFrontierTooLarge is returned by a traversal whose intermediate
	// frontier outgrew the Traversal.MaxFrontier bound.
	ErrFrontierTooLarge = core.ErrFrontierTooLarge
	// ErrCommitOutcomeUnknown wraps the context error Tx.CommitCtx returns
	// when the deadline fired after a leader claimed the commit group: the
	// transaction may still commit. A context error without this wrapper
	// means the transaction definitively did not commit.
	ErrCommitOutcomeUnknown = core.ErrCommitOutcomeUnknown
)

// Open creates (or, when Options.Dir is set, recovers) a graph.
func Open(opts Options) (*Graph, error) { return core.Open(opts) }

// Traverse starts a composable traversal from the given source vertices:
// chain Out, Filter, Dedup, Limit and AsOf, then Run it on any Reader (or
// RunGraph to pin a snapshot). The traversal executes as nested purely
// sequential TEL scans, materialising nothing beyond the current frontier.
func Traverse(src ...VertexID) *Traversal { return core.Traverse(src...) }

// IsRetryable reports whether err is a transient transaction abort
// (conflict or lock timeout) worth retrying. Context cancellation and
// deadline errors are not retryable.
func IsRetryable(err error) bool { return core.IsRetryable(err) }

// Update runs fn in a write transaction, retrying on transient aborts up to
// maxRetries times. fn must be idempotent. If fn returns an error the
// transaction is aborted and the error returned.
func Update(g *Graph, maxRetries int, fn func(tx *Tx) error) error {
	//lglint:ignore ctxprop public convenience wrapper; ctx-aware callers use UpdateCtx
	return UpdateCtx(context.Background(), g, maxRetries, fn)
}

// UpdateCtx is Update bound to ctx: the transaction's slot, lock and
// group-commit waits all respect the context's deadline, and retries stop
// once the context is done. fn must be idempotent.
func UpdateCtx(ctx context.Context, g *Graph, maxRetries int, fn func(tx *Tx) error) error {
	var err error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		var tx *Tx
		tx, err = g.BeginCtx(ctx)
		if err != nil {
			return err
		}
		if err = fn(tx); err != nil {
			tx.Abort()
			if IsRetryable(err) {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				continue
			}
			return err
		}
		if err = tx.CommitCtx(ctx); err == nil {
			return nil
		}
		if !IsRetryable(err) {
			return err
		}
	}
	return err
}

// View runs fn in a read-only snapshot transaction.
func View(g *Graph, fn func(tx *Tx) error) error {
	//lglint:ignore ctxprop public convenience wrapper; ctx-aware callers use ViewCtx
	return ViewCtx(context.Background(), g, fn)
}

// ViewCtx is View bound to ctx, which bounds the wait for a worker slot.
// Read-only transactions never block after that, so fn should capture ctx
// itself for cancellable work inside the view (e.g. Traversal.Run).
func ViewCtx(ctx context.Context, g *Graph, fn func(tx *Tx) error) error {
	tx, err := g.BeginReadCtx(ctx)
	if err != nil {
		return err
	}
	defer tx.Commit()
	return fn(tx)
}
