// Package livegraph_test: one testing.B benchmark per table and figure of
// the paper's evaluation. These are the fine-grained, ns/op counterparts of
// the full harness in internal/bench (cmd/lgbench), which prints the
// paper-formatted rows; EXPERIMENTS.md maps each to the paper.
//
// Run: go test -bench=. -benchmem
package livegraph_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"livegraph"
	"livegraph/internal/analytics"
	"livegraph/internal/baseline"
	"livegraph/internal/baseline/adjlist"
	"livegraph/internal/baseline/btree"
	"livegraph/internal/baseline/csr"
	"livegraph/internal/baseline/lsmt"
	"livegraph/internal/bench"
	"livegraph/internal/core"
	"livegraph/internal/iosim"
	"livegraph/internal/workload/kron"
	"livegraph/internal/workload/linkbench"
	"livegraph/internal/workload/snb"
)

const benchScale = 12 // 4096 vertices, ~16k edges: small enough to build per-benchmark

// ---- Figure 1: seek and scan latency per data structure -------------------

var fig1Edges = sync.OnceValue(func() []kron.Edge {
	return kron.Generate(benchScale, 4, 42, kron.DefaultParams)
})

func benchStores() map[string]baseline.EdgeStore {
	return map[string]baseline.EdgeStore{
		"LSMT":       lsmt.New(),
		"BTree":      btree.New(),
		"LinkedList": adjlist.New(),
	}
}

func loadEdges(s baseline.EdgeStore, edges []kron.Edge) {
	for _, e := range edges {
		s.AddEdge(e.Src, e.Dst, nil)
	}
}

func BenchmarkFig1Seek(b *testing.B) {
	edges := fig1Edges()
	for name, s := range benchStores() {
		loadEdges(s, edges)
		b.Run(name, func(b *testing.B) {
			sampler := kron.NewDegreeSampler(edges, 7)
			for i := 0; i < b.N; i++ {
				s.ScanNeighbors(sampler.Next(), func(int64, []byte) bool { return false })
			}
		})
	}
	b.Run("CSR", func(b *testing.B) {
		g := csr.Build(1<<benchScale, toCSR(edges))
		sampler := kron.NewDegreeSampler(edges, 7)
		for i := 0; i < b.N; i++ {
			g.ScanNeighbors(sampler.Next(), func(int64) bool { return false })
		}
	})
	b.Run("TEL", func(b *testing.B) {
		g := openBench(b)
		st := &linkbench.LiveGraphStore{G: g}
		loadLG(b, g, edges)
		sampler := kron.NewDegreeSampler(edges, 7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.ScanLinks(sampler.Next(), 1)
		}
	})
}

func BenchmarkFig1Scan(b *testing.B) {
	edges := fig1Edges()
	for name, s := range benchStores() {
		loadEdges(s, edges)
		b.Run(name, func(b *testing.B) {
			sampler := kron.NewDegreeSampler(edges, 7)
			visited := int64(0)
			for i := 0; i < b.N; i++ {
				s.ScanNeighbors(sampler.Next(), func(int64, []byte) bool { visited++; return true })
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(visited), "ns/edge")
		})
	}
	b.Run("CSR", func(b *testing.B) {
		g := csr.Build(1<<benchScale, toCSR(edges))
		sampler := kron.NewDegreeSampler(edges, 7)
		visited := int64(0)
		for i := 0; i < b.N; i++ {
			g.ScanNeighbors(sampler.Next(), func(int64) bool { visited++; return true })
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(visited), "ns/edge")
	})
	b.Run("TEL", func(b *testing.B) {
		g := openBench(b)
		loadLG(b, g, edges)
		sampler := kron.NewDegreeSampler(edges, 7)
		r, _ := g.BeginRead()
		defer r.Commit()
		visited := int64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			it := r.Neighbors(core.VertexID(sampler.Next()), 0)
			for it.Next() {
				visited++
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(visited), "ns/edge")
	})
}

func toCSR(edges []kron.Edge) []csr.Edge {
	out := make([]csr.Edge, len(edges))
	for i, e := range edges {
		out[i] = csr.Edge{Src: e.Src, Dst: e.Dst}
	}
	return out
}

func openBench(b *testing.B) *core.Graph {
	b.Helper()
	g, err := core.Open(core.Options{Workers: 256})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { g.Close() })
	return g
}

func loadLG(b *testing.B, g *core.Graph, edges []kron.Edge) {
	b.Helper()
	tx, _ := g.Begin()
	for i := 0; i < 1<<benchScale; i++ {
		tx.AddVertex(nil)
	}
	for _, e := range edges {
		tx.InsertEdge(core.VertexID(e.Src), 0, core.VertexID(e.Dst), nil)
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
}

// ---- Tables 3–6: LinkBench operation latency -------------------------------

// linkbenchOps runs b.N single-client LinkBench ops of the mix against the
// store (the tables' latency measurement, minus multi-client queueing).
func linkbenchOps(b *testing.B, s linkbench.Store, mix linkbench.Mix) {
	edges := linkbench.Build(s, linkbench.BaseGraph{Scale: 10, AvgDegree: 4, Seed: 42}, 64)
	b.ResetTimer()
	res := linkbench.Run(s, edges, linkbench.Config{Mix: mix, Clients: 1, Requests: b.N, Seed: 7})
	b.ReportMetric(res.Throughput(), "reqs/s")
}

// latencyTable runs b.N LinkBench ops of the mix against each system built
// by the shared harness (identical base graph, identical durability and
// paging models as lgbench's tables).
func latencyTable(b *testing.B, ooc bool, mix linkbench.Mix) {
	cfg := bench.Default(nil)
	cfg.LBScale = 10
	systems, edges, done := bench.BuildSystems(cfg, iosim.Optane, ooc)
	b.Cleanup(done)
	for _, s := range systems {
		s := s
		b.Run(s.Name, func(b *testing.B) {
			b.ResetTimer()
			res := linkbench.Run(s.Store, edges, linkbench.Config{Mix: mix, Clients: 1, Requests: b.N, Seed: 7})
			b.ReportMetric(res.Throughput(), "reqs/s")
		})
	}
}

func BenchmarkTable3TAOInMemory(b *testing.B)   { latencyTable(b, false, linkbench.TAO) }
func BenchmarkTable4DFLTInMemory(b *testing.B)  { latencyTable(b, false, linkbench.DFLT) }
func BenchmarkTable5TAOOutOfCore(b *testing.B)  { latencyTable(b, true, linkbench.TAO) }
func BenchmarkTable6DFLTOutOfCore(b *testing.B) { latencyTable(b, true, linkbench.DFLT) }

// ---- Figures 5/6/7a: throughput under concurrency --------------------------

func parallelLinkbench(b *testing.B, mix linkbench.Mix) {
	g := openBench(b)
	s := &linkbench.LiveGraphStore{G: g}
	edges := linkbench.Build(s, linkbench.BaseGraph{Scale: 10, AvgDegree: 4, Seed: 42}, 64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		sampler := kron.NewDegreeSampler(edges, rng.Int63())
		for pb.Next() {
			v := sampler.Next()
			if rng.Float64() < writeFrac(mix) {
				s.AddLink(v, rng.Int63n(1<<30)+1<<20, nil)
			} else {
				s.ScanLinks(v, 10000)
			}
		}
	})
}

func writeFrac(mix linkbench.Mix) float64 {
	var total, writes float64
	for op, w := range mix.Weights {
		total += w
		if linkbench.Op(op).IsWrite() {
			writes += w
		}
	}
	return writes / total
}

func BenchmarkFig5TAOParallel(b *testing.B)  { parallelLinkbench(b, linkbench.TAO) }
func BenchmarkFig6DFLTParallel(b *testing.B) { parallelLinkbench(b, linkbench.DFLT) }

func BenchmarkFig7aScalability(b *testing.B) {
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(linkbenchClients(clients), func(b *testing.B) {
			g := openBench(b)
			s := &linkbench.LiveGraphStore{G: g}
			edges := linkbench.Build(s, linkbench.BaseGraph{Scale: 10, AvgDegree: 4, Seed: 42}, 64)
			b.SetParallelism(clients)
			b.ResetTimer()
			res := linkbench.Run(s, edges, linkbench.Config{
				Mix: linkbench.TAO, Clients: clients, Requests: b.N/clients + 1, Seed: 3})
			b.ReportMetric(res.Throughput(), "reqs/s")
		})
	}
}

func linkbenchClients(n int) string {
	return map[int]string{1: "1client", 2: "2clients", 4: "4clients", 8: "8clients"}[n]
}

// ---- Figure 7b / §7.2 memory: allocation-path cost --------------------------

func BenchmarkFig7bBlockGrowth(b *testing.B) {
	// The block-size distribution itself is a report (lgbench -exp fig7b);
	// this measures its driver: log growth through doubling upgrades.
	g := openBench(b)
	tx, _ := g.Begin()
	hub, _ := tx.AddVertex(nil)
	tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := g.Begin()
		tx.InsertEdge(hub, 0, core.VertexID(i+10), nil)
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.Stats().Upgrades.Load()), "upgrades")
}

func BenchmarkMemCompaction(b *testing.B) {
	// §7.2: cost of one compaction pass over a dirty high-churn vertex.
	g := openBench(b)
	var a core.VertexID
	tx, _ := g.Begin()
	a, _ = tx.AddVertex(nil)
	tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 64; j++ {
			tx, _ := g.Begin()
			tx.AddEdge(a, 0, 99, []byte{byte(j)})
			tx.Commit()
		}
		b.StartTimer()
		g.CompactNow()
	}
}

// ---- Figure 8: write-ratio sweep -------------------------------------------

func BenchmarkFig8WriteRatio(b *testing.B) {
	for _, wr := range []int{25, 50, 75, 100} {
		mix := linkbench.WriteRatioMix(float64(wr) / 100)
		b.Run(mix.Name+"-LiveGraph", func(b *testing.B) {
			g := openBench(b)
			linkbenchOps(b, &linkbench.LiveGraphStore{G: g}, mix)
		})
		b.Run(mix.Name+"-RocksDB", func(b *testing.B) {
			linkbenchOps(b, &linkbench.BaselineStore{Edges: lsmt.New()}, mix)
		})
	}
}

// ---- Sharded WAL: commit throughput vs shard count --------------------------

// benchWALDir prefers a ramdisk for durable benchmarks so the measured
// persist time comes from the iosim device model, not host-filesystem
// fsync noise (see the wal package doc).
func benchWALDir(b *testing.B) string {
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		if dir, err := os.MkdirTemp("/dev/shm", "lg-commit-bench-*"); err == nil {
			b.Cleanup(func() { os.RemoveAll(dir) })
			return dir
		}
	}
	return b.TempDir()
}

// BenchmarkCommitThroughput sweeps WAL shard counts over a write-only,
// durability-bound commit workload on the simulated NAND device. The
// payload is sized so a commit group's persist phase is bandwidth-bound —
// the regime where splitting the group across shards and overlapping the
// fsyncs pays; tiny groups are fsync-latency-bound, where the paper's
// single log is already optimal and shards=1 should win or tie.
func BenchmarkCommitThroughput(b *testing.B) {
	payload := make([]byte, 64<<10)
	const vertices = 1 << 10
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			g, err := core.Open(core.Options{
				Dir:          benchWALDir(b),
				Device:       iosim.NewDevice(iosim.NAND),
				WALShards:    shards,
				Workers:      512,
				CompactEvery: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer g.Close()
			tx, _ := g.Begin()
			for i := 0; i < vertices; i++ {
				tx.AddVertex(nil)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			// ~32 concurrent committers regardless of core count, so the
			// leader always finds a group to amortise the fsync fan-out.
			if par := 32 / runtime.GOMAXPROCS(0); par > 1 {
				b.SetParallelism(par)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(rand.Int63()))
				for pb.Next() {
					for {
						tx, err := g.Begin()
						if err != nil {
							return
						}
						src := core.VertexID(rng.Intn(vertices))
						dst := core.VertexID(vertices + rng.Intn(1<<30))
						if err := tx.InsertEdge(src, 0, dst, payload); err != nil {
							if core.IsRetryable(err) {
								continue // aborted internally; retry
							}
							b.Error(err)
							return
						}
						err = tx.Commit()
						if err == nil {
							break
						}
						if !core.IsRetryable(err) {
							b.Error(err)
							return
						}
					}
				}
			})
		})
	}
}

// ---- §7.2 checkpoint ---------------------------------------------------------

func BenchmarkCkptCheckpoint(b *testing.B) {
	dir := b.TempDir()
	g, err := core.Open(core.Options{Dir: dir, Workers: 256})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	s := &linkbench.LiveGraphStore{G: g}
	linkbench.Build(s, linkbench.BaseGraph{Scale: 11, AvgDegree: 4, Seed: 42}, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Tables 7–9: SNB --------------------------------------------------------

type snbFixture struct {
	b  snb.Backend
	ds *snb.Dataset
}

func snbSystems(b *testing.B) map[string]snbFixture {
	b.Helper()
	g := openBench(b)
	out := map[string]snbFixture{}
	for name, backend := range map[string]snb.Backend{
		"LiveGraph":  &snb.LiveGraphBackend{G: g},
		"EdgeTable":  snb.NewTableBackend(),
		"Heap+Index": snb.NewHeapBackend(),
	} {
		ds, err := snb.Generate(backend, snb.GenConfig{Persons: 200, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		out[name] = snbFixture{backend, ds}
	}
	return out
}

func BenchmarkTable7SNBOverall(b *testing.B) {
	for name, f := range snbSystems(b) {
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			res := snb.Run(f.b, f.ds, snb.DriverConfig{Clients: 1, Requests: b.N, Seed: 23})
			b.ReportMetric(res.Throughput(), "reqs/s")
		})
	}
}

func BenchmarkTable8SNBComplexOnly(b *testing.B) {
	for name, f := range snbSystems(b) {
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			res := snb.Run(f.b, f.ds, snb.DriverConfig{Clients: 1, Requests: b.N, Seed: 23, ComplexOnly: true})
			b.ReportMetric(res.Throughput(), "reqs/s")
		})
	}
}

func BenchmarkTable9Queries(b *testing.B) {
	for name, f := range snbSystems(b) {
		rng := rand.New(rand.NewSource(31))
		b.Run(name+"/complex1", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				snb.ComplexRead1(f.b, f.ds.RandPerson(rng), f.ds.RandName(rng), 20)
			}
		})
		b.Run(name+"/complex13", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				snb.ComplexRead13(f.b, f.ds.RandPerson(rng), f.ds.RandPerson(rng))
			}
		})
		b.Run(name+"/short2", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				snb.ShortRead2(f.b, f.ds.RandPerson(rng))
			}
		})
		b.Run(name+"/update", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				snb.AddFriendship(f.b, f.ds.RandPerson(rng), f.ds.RandPerson(rng))
			}
		})
	}
}

// ---- Table 10: in-situ analytics vs ETL + CSR -------------------------------

func BenchmarkTable10(b *testing.B) {
	g := openBench(b)
	lg := &snb.LiveGraphBackend{G: g}
	if _, err := snb.Generate(lg, snb.GenConfig{Persons: 400, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	snap, err := g.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	defer snap.Release()
	view := analytics.SnapshotView{Snap: snap, Label: core.Label(snb.LKnows)}

	b.Run("PageRankInSitu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analytics.PageRank(view, 20, 4)
		}
	})
	b.Run("ConnCompInSitu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analytics.ConnComp(view, 4)
		}
	})
	b.Run("ETL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csr.BuildFromScanner(snap.NumVertices(), func(fn func(src, dst int64)) {
				for v := int64(0); v < snap.NumVertices(); v++ {
					snap.ScanNeighbors(core.VertexID(v), core.Label(snb.LKnows),
						func(dst core.VertexID, _ []byte) bool { fn(v, int64(dst)); return true })
				}
			})
		}
	})
	cg := csr.BuildFromScanner(snap.NumVertices(), func(fn func(src, dst int64)) {
		for v := int64(0); v < snap.NumVertices(); v++ {
			snap.ScanNeighbors(core.VertexID(v), core.Label(snb.LKnows),
				func(dst core.VertexID, _ []byte) bool { fn(v, int64(dst)); return true })
		}
	})
	b.Run("PageRankCSR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analytics.PageRank(analytics.CSRView{G: cg}, 20, 4)
		}
	})
	b.Run("ConnCompCSR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analytics.ConnComp(analytics.CSRView{G: cg}, 4)
		}
	})
}

// ---- Two-hop traversal: the v2 builder vs hand-rolled nested loops ---------

// BenchmarkTwoHopTraversal measures the paper's §7 friends-of-friends
// pattern on a power-law graph, comparing the composable traversal builder
// against explicitly nested iterator loops — the builder compiles to the
// same nested sequential TEL scans, so the two should track each other.
func BenchmarkTwoHopTraversal(b *testing.B) {
	edges := fig1Edges()
	g := openBench(b)
	loadLG(b, g, edges)
	ctx := context.Background()
	snap, err := g.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	defer snap.Release()

	b.Run("Builder", func(b *testing.B) {
		sampler := kron.NewDegreeSampler(edges, 7)
		visited := int64(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.Traverse(core.VertexID(sampler.Next())).Out(0).Out(0).Run(ctx, snap)
			if err != nil {
				b.Fatal(err)
			}
			visited += int64(len(res))
		}
		b.ReportMetric(float64(visited)/float64(b.N), "results/op")
	})
	// The same walk through the morsel-driven engine at fixed worker-pool
	// widths (p=1 pins the sequential compilation; p=8 fans wide hops out).
	// In-memory scans are CPU-bound, so the gap tracks core count; see
	// BenchmarkParallelTraversal for the out-of-core regime, where workers
	// overlap simulated page-fault latency even on one core.
	for _, p := range []int{1, 8} {
		b.Run(fmt.Sprintf("Parallel/p=%d", p), func(b *testing.B) {
			sampler := kron.NewDegreeSampler(edges, 7)
			visited := int64(0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Traverse(core.VertexID(sampler.Next())).Out(0).Out(0).Parallel(p).Run(ctx, snap)
				if err != nil {
					b.Fatal(err)
				}
				visited += int64(len(res))
			}
			b.ReportMetric(float64(visited)/float64(b.N), "results/op")
		})
	}
	b.Run("HandRolled", func(b *testing.B) {
		sampler := kron.NewDegreeSampler(edges, 7)
		visited := int64(0)
		for i := 0; i < b.N; i++ {
			var res []core.VertexID
			it := snap.Neighbors(core.VertexID(sampler.Next()), 0)
			for it.Next() {
				it2 := snap.Neighbors(it.Dst(), 0)
				for it2.Next() {
					res = append(res, it2.Dst())
				}
			}
			visited += int64(len(res))
		}
		b.ReportMetric(float64(visited)/float64(b.N), "results/op")
	})
	b.Run("BuilderDedupLimit", func(b *testing.B) {
		// The server-shaped query: unique friends-of-friends, first 20.
		sampler := kron.NewDegreeSampler(edges, 7)
		for i := 0; i < b.N; i++ {
			if _, err := core.Traverse(core.VertexID(sampler.Next())).
				Out(0).Out(0).Dedup().Limit(20).Run(ctx, snap); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Morsel-driven parallel traversal: worker-pool sweep --------------------

// BenchmarkParallelTraversal sweeps the traversal engine's worker-pool
// width over a ≥100k-edge power-law graph (scale 15, avg degree 4) in both
// execution regimes:
//
//   - InMemory: pure CPU scaling — flat on a single-core host, grows with
//     cores elsewhere;
//   - OutOfCore: the resident set is capped at 16% and misses charge a
//     2ms cold-read device, so the speedup comes from workers overlapping
//     simulated fault latency — ≥2x at p=8 even on one core (the morsel
//     analogue of the sharded WAL's fsync fan-out).
//
// Allocs/op is reported to track the pooled-EdgeIter fast path.
func BenchmarkParallelTraversal(b *testing.B) {
	const scale = 15
	edges := kron.Generate(scale, 4, 42, kron.DefaultParams)
	if len(edges) < 100_000 {
		b.Fatalf("fixture too small: %d edges", len(edges))
	}
	ctx := context.Background()

	runSweep := func(b *testing.B, snap *core.Snapshot, coldStart func()) {
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
				if coldStart != nil {
					coldStart()
				}
				sampler := kron.NewDegreeSampler(edges, 7)
				visited := int64(0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := core.Traverse(core.VertexID(sampler.Next())).
						Out(0).Out(0).Parallel(p).Run(ctx, snap)
					if err != nil {
						b.Fatal(err)
					}
					visited += int64(len(res))
				}
				b.ReportMetric(float64(visited)/float64(b.N), "results/op")
			})
		}
	}

	b.Run("InMemory", func(b *testing.B) {
		g, err := core.Open(core.Options{Workers: 256})
		if err != nil {
			b.Fatal(err)
		}
		defer g.Close()
		loadScaled(b, g, scale, edges)
		snap, err := g.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		defer snap.Release()
		runSweep(b, snap, nil)
	})

	b.Run("OutOfCore", func(b *testing.B) {
		dev := iosim.NewDevice(bench.ColdRead)
		cache := iosim.NewPageCache(dev, 1<<62)
		g, err := core.Open(core.Options{Workers: 256, PageCache: cache})
		if err != nil {
			b.Fatal(err)
		}
		defer g.Close()
		loadScaled(b, g, scale, edges)
		residentCap := int64(float64(g.AllocStats().AllocatedWords*8*2) * 0.16)
		snap, err := g.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		defer snap.Release()
		runSweep(b, snap, func() {
			// Each pool width starts from a cold resident set so no level
			// coasts on a predecessor's faults.
			cache.SetCap(1)
			cache.SetCap(residentCap)
		})
	})
}

// loadScaled loads a kron edge set over 2^scale vertices in batched
// transactions (one huge commit would hold the apply phase for seconds).
func loadScaled(b *testing.B, g *core.Graph, scale int, edges []kron.Edge) {
	b.Helper()
	tx, _ := g.Begin()
	for i := 0; i < 1<<scale; i++ {
		tx.AddVertex(nil)
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	for lo := 0; lo < len(edges); lo += 8192 {
		hi := lo + 8192
		if hi > len(edges) {
			hi = len(edges)
		}
		tx, _ := g.Begin()
		for _, e := range edges[lo:hi] {
			tx.InsertEdge(core.VertexID(e.Src), 0, core.VertexID(e.Dst), nil)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Example of using the public API under load (doc benchmark) ------------

func BenchmarkPublicAPIMixed(b *testing.B) {
	g, err := livegraph.Open(livegraph.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	livegraph.Update(g, 3, func(tx *livegraph.Tx) error {
		for i := 0; i < 1000; i++ {
			tx.AddVertex(nil)
		}
		return nil
	})
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			v := livegraph.VertexID(rng.Intn(1000))
			if rng.Intn(10) < 3 {
				livegraph.Update(g, 10, func(tx *livegraph.Tx) error {
					return tx.InsertEdge(v, 0, livegraph.VertexID(rng.Intn(1000)), nil)
				})
			} else {
				livegraph.View(g, func(tx *livegraph.Tx) error {
					it := tx.Neighbors(v, 0)
					for it.Next() {
					}
					return nil
				})
			}
		}
	})
}
