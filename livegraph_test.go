package livegraph_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"livegraph"
)

func open(t testing.TB) *livegraph.Graph {
	t.Helper()
	g, err := livegraph.Open(livegraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func TestPublicAPIQuickstart(t *testing.T) {
	g := open(t)
	var alice, bob livegraph.VertexID
	err := livegraph.Update(g, 3, func(tx *livegraph.Tx) error {
		var err error
		if alice, err = tx.AddVertex([]byte("alice")); err != nil {
			return err
		}
		if bob, err = tx.AddVertex([]byte("bob")); err != nil {
			return err
		}
		return tx.InsertEdge(alice, 0, bob, []byte("2020"))
	})
	if err != nil {
		t.Fatal(err)
	}
	err = livegraph.View(g, func(tx *livegraph.Tx) error {
		it := tx.Neighbors(alice, 0)
		if !it.Next() {
			return errors.New("no edge")
		}
		if it.Dst() != bob || string(it.Props()) != "2020" {
			return fmt.Errorf("edge %d %q", it.Dst(), it.Props())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUpdateRetriesConflicts(t *testing.T) {
	g := open(t)
	var a, b livegraph.VertexID
	livegraph.Update(g, 0, func(tx *livegraph.Tx) error {
		a, _ = tx.AddVertex(nil)
		b, _ = tx.AddVertex(nil)
		return tx.AddEdge(a, 0, b, []byte{0})
	})
	// Concurrent increments through the retry helper must not lose
	// updates.
	const workers, incs = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				err := livegraph.Update(g, 1000, func(tx *livegraph.Tx) error {
					p, err := tx.GetEdge(a, 0, b)
					if err != nil {
						return err
					}
					return tx.AddEdge(a, 0, b, []byte{p[0] + 1})
				})
				if err != nil {
					t.Errorf("update: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	livegraph.View(g, func(tx *livegraph.Tx) error {
		p, err := tx.GetEdge(a, 0, b)
		if err != nil {
			return err
		}
		if int(p[0]) != workers*incs {
			t.Errorf("counter %d, want %d", p[0], workers*incs)
		}
		return nil
	})
}

func TestUpdatePropagatesUserError(t *testing.T) {
	g := open(t)
	sentinel := errors.New("boom")
	err := livegraph.Update(g, 3, func(tx *livegraph.Tx) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err %v", err)
	}
}

func TestIsRetryable(t *testing.T) {
	if !livegraph.IsRetryable(livegraph.ErrConflict) || !livegraph.IsRetryable(livegraph.ErrLockTimeout) {
		t.Fatal("conflict/timeout must be retryable")
	}
	if livegraph.IsRetryable(livegraph.ErrNotFound) || livegraph.IsRetryable(nil) {
		t.Fatal("not-found/nil must not be retryable")
	}
}

func TestDurableRoundTripViaPublicAPI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graph")
	g, err := livegraph.Open(livegraph.Options{Dir: path})
	if err != nil {
		t.Fatal(err)
	}
	var v livegraph.VertexID
	livegraph.Update(g, 3, func(tx *livegraph.Tx) error {
		v, _ = tx.AddVertex([]byte("persistent"))
		return tx.InsertEdge(v, 7, v, []byte("self"))
	})
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := livegraph.Open(livegraph.Options{Dir: path})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	livegraph.View(g2, func(tx *livegraph.Tx) error {
		d, err := tx.GetVertex(v)
		if err != nil || string(d) != "persistent" {
			t.Errorf("vertex %q %v", d, err)
		}
		p, err := tx.GetEdge(v, 7, v)
		if err != nil || string(p) != "self" {
			t.Errorf("edge %q %v", p, err)
		}
		return nil
	})
}

func TestSnapshotForAnalytics(t *testing.T) {
	g := open(t)
	var hub livegraph.VertexID
	livegraph.Update(g, 3, func(tx *livegraph.Tx) error {
		hub, _ = tx.AddVertex(nil)
		for i := 0; i < 10; i++ {
			id, _ := tx.AddVertex(nil)
			tx.InsertEdge(hub, 0, id, nil)
		}
		return nil
	})
	snap, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if d := snap.Degree(hub, 0); d != 10 {
		t.Fatalf("degree %d", d)
	}
	// Concurrent use of one snapshot.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				n := 0
				snap.ScanNeighbors(hub, 0, func(livegraph.VertexID, []byte) bool { n++; return true })
				if n != 10 {
					t.Errorf("scan %d", n)
				}
			}
		}()
	}
	wg.Wait()
}
