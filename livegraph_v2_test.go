package livegraph_test

// Public-surface tests for the v2 API: the exported Reader interface,
// context-aware transaction helpers, and the traversal builder as library
// consumers use them.

import (
	"context"
	"errors"
	"testing"
	"time"

	"livegraph"
)

// countFoF is written once against Reader and reused for both
// implementations — the point of the unified surface.
func countFoF(r livegraph.Reader, src livegraph.VertexID, label livegraph.Label) int {
	n := 0
	it := r.Neighbors(src, label)
	for it.Next() {
		n += r.Degree(it.Dst(), label)
	}
	return n
}

func TestPublicReaderSurface(t *testing.T) {
	g, err := livegraph.Open(livegraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var a, b, c livegraph.VertexID
	err = livegraph.Update(g, 3, func(tx *livegraph.Tx) error {
		a, _ = tx.AddVertex([]byte("a"))
		b, _ = tx.AddVertex([]byte("b"))
		c, _ = tx.AddVertex([]byte("c"))
		tx.InsertEdge(a, 0, b, nil)
		return tx.InsertEdge(b, 0, c, nil)
	})
	if err != nil {
		t.Fatal(err)
	}

	tx, err := g.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	fromTx := countFoF(tx, a, 0)
	tx.Commit()

	snap, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fromSnap := countFoF(snap, a, 0)
	snap.Release()

	if fromTx != 1 || fromSnap != 1 {
		t.Fatalf("friends-of-friends: tx=%d snapshot=%d, want 1/1", fromTx, fromSnap)
	}
}

func TestPublicTraversalAndCtxHelpers(t *testing.T) {
	g, err := livegraph.Open(livegraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ctx := context.Background()

	var a, b, c livegraph.VertexID
	err = livegraph.UpdateCtx(ctx, g, 3, func(tx *livegraph.Tx) error {
		a, _ = tx.AddVertex([]byte("a"))
		b, _ = tx.AddVertex([]byte("b"))
		c, _ = tx.AddVertex([]byte("c"))
		tx.InsertEdge(a, 0, b, nil)
		return tx.InsertEdge(b, 0, c, nil)
	})
	if err != nil {
		t.Fatal(err)
	}

	err = livegraph.ViewCtx(ctx, g, func(tx *livegraph.Tx) error {
		got, err := livegraph.Traverse(a).Out(0).Out(0).Run(ctx, tx)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != c {
			t.Fatalf("two-hop = %v, want [%d]", got, c)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// A cancelled context refuses new work through the public helpers.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := livegraph.UpdateCtx(cctx, g, 3, func(*livegraph.Tx) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("UpdateCtx(cancelled) err = %v", err)
	}
	if err := livegraph.ViewCtx(cctx, g, func(*livegraph.Tx) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("ViewCtx(cancelled) err = %v", err)
	}
}

func TestPublicUpdateCtxDeadlineOnLockWait(t *testing.T) {
	g, err := livegraph.Open(livegraph.Options{LockTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var v livegraph.VertexID
	if err := livegraph.Update(g, 3, func(tx *livegraph.Tx) error {
		v, err = tx.AddVertex(nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	holder, err := g.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.PutVertex(v, []byte("held")); err != nil {
		t.Fatal(err)
	}
	defer holder.Abort()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = livegraph.UpdateCtx(ctx, g, 10, func(tx *livegraph.Tx) error {
		return tx.PutVertex(v, []byte("blocked"))
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("UpdateCtx err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("UpdateCtx blocked %v past its deadline", elapsed)
	}
}
